package lsm

import (
	"fmt"
	"time"
)

// StallReason classifies a write stall, matching the paper's taxonomy
// (§II-A): flush backlog, L0 file count, pending compaction bytes.
type StallReason int

const (
	// StallMemtable is a flush-based stall: every memtable is full and
	// the flusher has not caught up.
	StallMemtable StallReason = iota
	// StallL0 is an L0→L1 compaction-based stall: too many L0 files.
	StallL0
	// StallPending is a pending-compaction-bytes stall.
	StallPending
	numStallReasons
)

func (s StallReason) String() string {
	switch s {
	case StallMemtable:
		return "memtable"
	case StallL0:
		return "l0"
	case StallPending:
		return "pending-bytes"
	}
	return "unknown"
}

// numLevelBuckets sizes the per-level read-attribution histogram;
// deeper levels fold into the last bucket (the tree rarely exceeds 7
// levels anyway).
const numLevelBuckets = 8

// Stats is a snapshot of a DB's cumulative counters.
type Stats struct {
	Puts    int64
	Gets    int64
	Deletes int64

	// Read-pipeline attribution (read.go): which layer of the lookup
	// chain served each Get. Exactly one of these increments per Get, so
	// Gets == ReadsMemtable + ReadsImmutable + ΣReadsLevel + ReadMisses.
	// ReadsLevel[0] is L0; deeper levels fold into the last bucket.
	ReadsMemtable  int64
	ReadsImmutable int64
	ReadsLevel     [numLevelBuckets]int64
	ReadMisses     int64

	// Bloom-filter accounting across every SST probed by the read
	// pipeline: consults, definite-negative answers (saved block reads),
	// and false positives (blocks read for an absent key).
	BloomConsults       int64
	BloomNegatives      int64
	BloomFalsePositives int64

	// VLogDerefs counts read-triggered value-pointer dereferences (point
	// gets and iterator values); the GC's liveness probes do not count.
	VLogDerefs int64

	// Block-cache and vlog-read-cache counters, folded in by Stats()
	// from the live caches.
	BlockCacheHits      int64
	BlockCacheMisses    int64
	BlockCacheEvictions int64
	// ReadaheadBlocks counts data blocks inserted by scan readahead: a
	// sequential iterator walk prefetches upcoming blocks in one
	// contiguous device read instead of per-block demand misses.
	ReadaheadBlocks     int64
	VLogReadCacheHits   int64
	VLogReadCacheMisses int64

	// Slowdowns counts writes that were throttled by the slowdown
	// mechanism; StallEvents counts writes that hit a hard stop, by
	// reason; StallTime is total writer time spent blocked in stalls.
	Slowdowns   int64
	StallEvents [numStallReasons]int64
	StallTime   time.Duration

	// GroupCommits counts committed write groups and GroupedRecords the
	// records they carried (mean group size = GroupedRecords /
	// GroupCommits). WALAppends counts write-path WAL Append calls —
	// one per group, or one per record on the legacy path — so
	// WALAppends / (Puts+Deletes) is the appends-per-record amortization
	// the pipeline exists to shrink.
	//
	// WouldStalls counts NoStallWait writes that failed fast with
	// ErrWouldStall instead of parking — exactly one increment per
	// failed write, never per group: a stalling leader that ejects N
	// queued NoStallWait followers accounts N (one each), and adds one
	// more only if the leader itself was non-blocking and failed too.
	// WALErrors counts write-path WAL append failures (on the group path
	// the claimed sequence range is released when no later group claimed
	// past it; otherwise, and on the legacy path, the gap stands —
	// recovery renumbers densely).
	GroupCommits   int64
	GroupedRecords int64
	WALAppends     int64
	WouldStalls    int64
	WALErrors      int64

	// Linger and pipelining counters. GroupLingerWaits counts leader
	// linger windows actually taken and GroupLingerMicros the virtual
	// microseconds spent in them (windows cut short by a full queue
	// count their real wait). PipelinedAppends counts group WAL appends
	// issued while a previous group's append or memtable apply was still
	// in flight — the overlap the pipelined WAL exists to create.
	// ReplayShards is the number of concurrent replay inserters the last
	// Reopen used (0 until a recovery has run, 1 for a serial replay).
	GroupLingerWaits  int64
	GroupLingerMicros int64
	PipelinedAppends  int64
	ReplayShards      int64

	Flushes              int64
	FlushBytes           int64
	Compactions          int64
	CompactionReadBytes  int64
	CompactionWriteBytes int64
	WALBytesWritten      int64

	// Compaction-offload counters. OffloadedCompactions counts merges
	// the device executed end-to-end (installed from device-built
	// tables); OffloadedBytes is the table bytes those merges produced;
	// OffloadFallbacks counts offload attempts that fell back to a host
	// merge (device fault, abort, or validation miss).
	// DeviceMergeCPUMicros is the controller ARM time those merges cost
	// — cycles that would otherwise have been host merge CPU.
	OffloadedCompactions int64
	OffloadedBytes       int64
	OffloadFallbacks     int64
	DeviceMergeCPUMicros int64

	// UserBytes is the pre-separation key+value payload committed by user
	// writes — write-amp's denominator. With value separation a 4 KiB
	// value contributes 4 KiB here but only a 13-byte pointer to
	// FlushBytes, which is why the old FlushBytes denominator can no
	// longer stand in for user volume.
	UserBytes int64

	// Value-log counters. VLogBytes is device bytes the vlog wrote
	// (segment write-back, GC rewrites included); VLogGCRewrites /
	// VLogGCBytes count live records GC re-appended (not user writes);
	// VLogSegments is the live segment count; VLogDiscardBytes is
	// cumulative dead bytes reported by compaction; VLogPunchedBytes is
	// bytes reclaimed via segment punch (TRIM).
	VLogBytes        int64
	VLogGCRewrites   int64
	VLogGCBytes      int64
	VLogSegments     int64
	VLogDiscardBytes int64
	VLogPunchedBytes int64
}

// MeanGroupSize is the average number of records per committed write
// group (1 when no groups formed).
func (s Stats) MeanGroupSize() float64 {
	if s.GroupCommits == 0 {
		return 1
	}
	return float64(s.GroupedRecords) / float64(s.GroupCommits)
}

// WALAppendsPerRecord is write-path WAL Append calls per committed
// record — 1.0 on the legacy path, below 1 once groups amortize appends.
func (s Stats) WALAppendsPerRecord() float64 {
	recs := s.Puts + s.Deletes
	if recs == 0 {
		return 0
	}
	return float64(s.WALAppends) / float64(recs)
}

// ReadsSST sums the per-level SST read attribution.
func (s Stats) ReadsSST() int64 {
	var n int64
	for _, v := range s.ReadsLevel {
		n += v
	}
	return n
}

// ReadsAttributed is the total reads the pipeline accounted for; it
// equals Gets exactly (the attribution invariant tests pin).
func (s Stats) ReadsAttributed() int64 {
	return s.ReadsMemtable + s.ReadsImmutable + s.ReadsSST() + s.ReadMisses
}

// BlockCacheHitRate returns block-cache hits over lookups (0 when idle).
func (s Stats) BlockCacheHitRate() float64 {
	if s.BlockCacheHits+s.BlockCacheMisses == 0 {
		return 0
	}
	return float64(s.BlockCacheHits) / float64(s.BlockCacheHits+s.BlockCacheMisses)
}

// TotalStalls sums stall events across reasons.
func (s Stats) TotalStalls() int64 {
	var n int64
	for _, v := range s.StallEvents {
		n += v
	}
	return n
}

// WriteAmplification estimates device-write bytes per user byte: WAL +
// flush + compaction + value-log writes over the user payload. UserBytes
// (pre-separation key+value volume) is the denominator; snapshots
// predating the counter fall back to FlushBytes, which equalled user
// volume before value separation existed.
func (s Stats) WriteAmplification() float64 {
	device := s.WALBytesWritten + s.FlushBytes + s.CompactionWriteBytes + s.VLogBytes
	user := s.UserBytes
	if user == 0 {
		user = s.FlushBytes
	}
	if user == 0 {
		return 1
	}
	return float64(device) / float64(user)
}

// Health is the instantaneous state the KVACCEL Detector polls (§V-C):
// the three write-stall signals plus whether writers are blocked right
// now.
type Health struct {
	L0Files                int
	ImmutableMemtables     int
	MemtableBytes          int64
	MemtableCapacity       int64
	PendingCompactionBytes int64
	// Stalled is true while at least one writer is blocked in a hard
	// stall.
	Stalled bool
	// SlowdownLikely is true when any slowdown trigger currently holds —
	// the Detector's "write stall is imminent" signal.
	SlowdownLikely bool
	// ActiveCompactions and QueuedFlushes describe background load.
	ActiveCompactions int
	QueuedFlushes     int
}

// Add returns the field-wise sum of two stats snapshots — the
// aggregation the sharded front-end uses to report one engine-shaped
// counter set across N independent shards.
func (s Stats) Add(o Stats) Stats {
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.Deletes += o.Deletes
	s.ReadsMemtable += o.ReadsMemtable
	s.ReadsImmutable += o.ReadsImmutable
	for i := range s.ReadsLevel {
		s.ReadsLevel[i] += o.ReadsLevel[i]
	}
	s.ReadMisses += o.ReadMisses
	s.BloomConsults += o.BloomConsults
	s.BloomNegatives += o.BloomNegatives
	s.BloomFalsePositives += o.BloomFalsePositives
	s.VLogDerefs += o.VLogDerefs
	s.BlockCacheHits += o.BlockCacheHits
	s.BlockCacheMisses += o.BlockCacheMisses
	s.BlockCacheEvictions += o.BlockCacheEvictions
	s.ReadaheadBlocks += o.ReadaheadBlocks
	s.VLogReadCacheHits += o.VLogReadCacheHits
	s.VLogReadCacheMisses += o.VLogReadCacheMisses
	s.Slowdowns += o.Slowdowns
	for i := range s.StallEvents {
		s.StallEvents[i] += o.StallEvents[i]
	}
	s.StallTime += o.StallTime
	s.GroupCommits += o.GroupCommits
	s.GroupedRecords += o.GroupedRecords
	s.WALAppends += o.WALAppends
	s.WouldStalls += o.WouldStalls
	s.WALErrors += o.WALErrors
	s.GroupLingerWaits += o.GroupLingerWaits
	s.GroupLingerMicros += o.GroupLingerMicros
	s.PipelinedAppends += o.PipelinedAppends
	s.ReplayShards += o.ReplayShards
	s.Flushes += o.Flushes
	s.FlushBytes += o.FlushBytes
	s.Compactions += o.Compactions
	s.CompactionReadBytes += o.CompactionReadBytes
	s.CompactionWriteBytes += o.CompactionWriteBytes
	s.WALBytesWritten += o.WALBytesWritten
	s.OffloadedCompactions += o.OffloadedCompactions
	s.OffloadedBytes += o.OffloadedBytes
	s.OffloadFallbacks += o.OffloadFallbacks
	s.DeviceMergeCPUMicros += o.DeviceMergeCPUMicros
	s.UserBytes += o.UserBytes
	s.VLogBytes += o.VLogBytes
	s.VLogGCRewrites += o.VLogGCRewrites
	s.VLogGCBytes += o.VLogGCBytes
	s.VLogSegments += o.VLogSegments
	s.VLogDiscardBytes += o.VLogDiscardBytes
	s.VLogPunchedBytes += o.VLogPunchedBytes
	return s
}

// MemtablePressure reports the anticipatory stall signal: the active
// memtable is filling (>= 60%) while the flush backlog is at its limit,
// so the next rotation would block the writer.
func (h Health) MemtablePressure() bool {
	return h.ImmutableMemtables > 0 &&
		h.MemtableCapacity > 0 && h.MemtableBytes*10 >= h.MemtableCapacity*6
}

// StallSignal is the engine's exported write-stall prediction (§V-C): a
// stop condition already holding, a slowdown trigger, or the
// anticipatory memtable-pressure signal. The KVACCEL Detector redirects
// writes while this is true.
func (h Health) StallSignal() bool {
	return h.Stalled || h.SlowdownLikely || h.MemtablePressure()
}

// String renders the stats as a compact db_bench-style summary line.
func (s Stats) String() string {
	return fmt.Sprintf("puts=%d gets=%d dels=%d slowdowns=%d stalls=%d stallTime=%v flushes=%d compactions=%d WA=%.2f",
		s.Puts, s.Gets, s.Deletes, s.Slowdowns, s.TotalStalls(), s.StallTime,
		s.Flushes, s.Compactions, s.WriteAmplification())
}
