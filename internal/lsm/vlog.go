package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"kvaccel/internal/encoding"
	"kvaccel/internal/memtable"
	"kvaccel/internal/trace"
	"kvaccel/internal/vclock"
	"kvaccel/internal/vlog"
	"kvaccel/internal/wal"
)

// vlogGateUnits sizes the writer/GC exclusion semaphore: a writer holds
// one unit across its commit, the GC holds all of them around one
// check-and-rewrite batch, so "GC holds the gate" means "no committed
// write is invisible yet" — the invariant that makes the liveness
// re-check under the gate exact. Mirrors core's rollback gate.
const vlogGateUnits = 1 << 20

// vlogGCBatch is how many live records GC rewrites per exclusive gate
// hold; small enough that foreground writers never queue behind the GC
// for long.
const vlogGCBatch = 32

func (db *DB) vlogOptions() vlog.Options {
	return vlog.Options{
		SegmentSize:    db.opt.VLogSegmentSize,
		ChunkSize:      db.opt.WALChunkSize,
		QueueDepth:     db.opt.WALQueueDepth,
		CPU:            db.opt.CPU,
		AppendCPU:      db.opt.Cost.WALAppendCPU,
		ReadCacheBytes: db.opt.VLogReadCacheBytes,
	}
}

// separates reports whether a write's value should go to the value log.
func (db *DB) separates(kind memtable.Kind, value []byte) bool {
	return db.vlog != nil && db.opt.ValueThreshold > 0 &&
		kind == memtable.KindPut && len(value) >= db.opt.ValueThreshold
}

// preSeparateStallCheck fails a NoStallWait write before it pays the
// value-log append: the group path would reject it at the queue anyway,
// and the appended value would be instant garbage.
func (db *DB) preSeparateStallCheck(wo WriteOptions) error {
	if !wo.NoStallWait || db.opt.DisableGroupCommit {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stalledWriters > 0 {
		db.stats.WouldStalls++
		return ErrWouldStall
	}
	return nil
}

// appendVLog frames one separated value into the value log.
func (db *DB) appendVLog(r *vclock.Runner, key, value []byte) (encoding.ValuePointer, error) {
	sp := db.opt.Trace.Begin(r, trace.PhaseVLogAppend, "vlog-append")
	ptr, err := db.vlog.Append(r, key, value)
	sp.EndArg(r, int64(len(value)))
	return ptr, err
}

// derefPointer resolves a KindValuePtr entry's value bytes.
func (db *DB) derefPointer(r *vclock.Runner, pv []byte) ([]byte, error) {
	ptr, err := encoding.DecodeValuePointer(pv)
	if err != nil {
		return nil, err
	}
	if db.vlog == nil {
		return nil, fmt.Errorf("lsm: value pointer with no value log")
	}
	db.mu.Lock()
	db.stats.VLogDerefs++
	db.mu.Unlock()
	sp := db.opt.Trace.Begin(r, trace.PhaseVLogRead, "vlog-read")
	v, err := db.vlog.ReadValue(r, ptr)
	sp.EndArg(r, int64(len(v)))
	return v, err
}

// VLogStats exposes the value log's counters (zero when disabled).
func (db *DB) VLogStats() vlog.Stats {
	if db.vlog == nil {
		return vlog.Stats{}
	}
	return db.vlog.Stats()
}

// vlogGCWorker is the background garbage collector: whenever a sealed
// segment's compaction-reported discard ratio crosses
// VLogGCDiscardRatio, it rewrites the segment's live values through the
// normal write path and punches the segment via TRIM.
func (db *DB) vlogGCWorker(r *vclock.Runner) {
	for {
		db.mu.Lock()
		for !db.closed && db.bgErr == nil && !db.vlogGCReadyLocked() {
			db.bgCond.Wait(r)
		}
		if db.bgErr != nil && !db.closed {
			// Read-only DB: no more GC, park until shutdown.
			for !db.closed {
				db.bgCond.Wait(r)
			}
		}
		if db.closed {
			db.mu.Unlock()
			return
		}
		db.mu.Unlock()

		db.drainPunchQueue(r)
		if seg, ok := db.vlog.PickGC(db.opt.VLogGCDiscardRatio); ok {
			if err := db.gcSegment(r, seg); err != nil && !db.isClosed() {
				// Transient failure (e.g. persistent stall pressure):
				// back off instead of spinning on the same segment.
				r.Sleep(10 * time.Millisecond)
			}
		}
	}
}

// vlogGCReadyLocked reports whether the GC worker has work: a punchable
// queue or a segment over the discard threshold. Caller holds db.mu;
// vlog's own lock nests inside db.mu everywhere.
func (db *DB) vlogGCReadyLocked() bool {
	if len(db.punchQueue) > 0 && db.openIters == 0 && len(db.snapshots) == 0 {
		return true
	}
	_, ok := db.vlog.PickGC(db.opt.VLogGCDiscardRatio)
	return ok
}

// CollectVLogGarbage runs one synchronous GC pass over the most
// garbage-laden sealed segment at or above ratio (0 accepts any sealed
// segment with any discard). It exists for tests and tooling; the
// background worker calls the same machinery. Returns whether a segment
// was collected.
func (db *DB) CollectVLogGarbage(r *vclock.Runner, ratio float64) (bool, error) {
	if db.vlog == nil {
		return false, nil
	}
	seg, ok := db.vlog.PickGC(ratio)
	if !ok {
		return false, nil
	}
	if err := db.gcSegment(r, seg); err != nil {
		return false, err
	}
	return true, nil
}

// gcSegment collects one segment: sequential segment read, liveness
// pre-filter, gated check-and-rewrite batches, sync, punch.
func (db *DB) gcSegment(r *vclock.Runner, seg uint32) error {
	sp := db.opt.Trace.Begin(r, trace.PhaseVLogGC, "vlog-gc")
	defer sp.End(r)

	entries, err := db.vlog.SegmentEntries(r, seg)
	if err != nil {
		return err
	}
	// Pre-filter liveness outside the gate to keep the exclusive windows
	// small; each batch re-checks under the gate before rewriting.
	live := entries[:0]
	for _, e := range entries {
		alive, lerr := db.pointerLive(r, e.Key, e.Ptr)
		if lerr != nil {
			return lerr
		}
		if alive {
			live = append(live, e)
		}
	}
	for start := 0; start < len(live); start += vlogGCBatch {
		end := start + vlogGCBatch
		if end > len(live) {
			end = len(live)
		}
		// Rewrite each batch in user-key order, not segment order: the
		// re-appended values land adjacent in the head segment for keys
		// adjacent in the tree, so a later range scan dereferencing the
		// rewritten pointers reads the segment sequentially instead of
		// replaying the dead segment's historical write order.
		sortGCBatch(live[start:end])
		for {
			err := db.gcRewriteBatch(r, live[start:end], db.testHookGC)
			if err == ErrWouldStall {
				// The engine is stalling; the foreground failover path has
				// priority. Release pressure and retry the batch.
				r.Sleep(5 * time.Millisecond)
				continue
			}
			if err != nil {
				return err
			}
			break
		}
	}
	// Every live value now has a newer copy; make the rewrites durable
	// (vlog segment and the WAL records carrying the new pointers)
	// before the old copies disappear, or a crash after the punch could
	// lose the only recoverable copy.
	if err := db.syncForVLogGC(r); err != nil {
		return err
	}
	if db.testHookGC != nil {
		db.testHookGC("before-punch")
	}
	db.finishSegment(r, seg)
	if db.testHookGC != nil {
		db.testHookGC("after-punch")
	}
	return nil
}

// sortGCBatch orders one rewrite batch by user key (ties — impossible
// for live pointers, which are unique per key — fall back to segment
// offset for determinism).
func sortGCBatch(batch []vlog.Entry) {
	sort.SliceStable(batch, func(i, j int) bool {
		return bytes.Compare(batch[i].Key, batch[j].Key) < 0
	})
}

// gcRewriteBatch re-checks and rewrites one batch of candidate records
// under the exclusive writer gate. Holding every gate unit guarantees no
// foreground commit is in flight, so a record that checks live here
// cannot be superseded before its rewrite commits — the stale-value
// resurrection race this gate exists to prevent.
func (db *DB) gcRewriteBatch(r *vclock.Runner, batch []vlog.Entry, hook func(string)) error {
	db.gcGate.Acquire(r, vlogGateUnits)
	defer db.gcGate.Release(vlogGateUnits)
	for _, e := range batch {
		alive, err := db.pointerLive(r, e.Key, e.Ptr)
		if err != nil {
			return err
		}
		if !alive {
			continue
		}
		if err := db.rewriteForGC(r, e.Key, e.Value); err != nil {
			return err
		}
		if hook != nil {
			hook("after-rewrite")
		}
	}
	return nil
}

// pointerLive reports whether ptr is still the newest version of key.
func (db *DB) pointerLive(r *vclock.Runner, key []byte, ptr encoding.ValuePointer) (bool, error) {
	db.opt.CPU.Run(r, db.opt.Cost.ReadCPU)
	v, kind, found, err := db.getRaw(r, key, ^uint64(0))
	if err != nil {
		return false, err
	}
	if !found || kind != memtable.KindValuePtr {
		return false, nil
	}
	cur, derr := encoding.DecodeValuePointer(v)
	return derr == nil && cur == ptr, nil
}

// rewriteForGC re-appends one live value to the head segment and commits
// the fresh pointer through the write path, bypassing the gate (the GC
// holds it) and flagged internal so it does not count as a user write.
func (db *DB) rewriteForGC(r *vclock.Runner, key, value []byte) error {
	if db.testHookGCRewrite != nil {
		db.testHookGCRewrite(key)
	}
	ptr, err := db.appendVLog(r, key, value)
	if err != nil {
		return err
	}
	pv := encoding.AppendValuePointer(nil, ptr)
	wo := WriteOptions{NoStallWait: true}
	if db.opt.DisableGroupCommit {
		err = db.writeLegacy(r, wo, memtable.KindValuePtr, key, pv, int64(len(value)), true)
	} else {
		w := &groupWriter{bytes: len(key) + len(pv) + 16, noStall: true, internal: true, userBytes: int64(len(value))}
		w.single[0] = batchOp{kind: memtable.KindValuePtr, key: key, value: pv}
		w.ops = w.single[:1]
		err = db.commitThroughGroup(r, w)
	}
	if err != nil {
		db.vlog.MarkDiscard(ptr.Seg, int64(ptr.Len))
	}
	return err
}

// syncForVLogGC makes every rewrite durable: the value log first, then
// every live WAL (active and queued-for-flush) carrying pointer records.
func (db *DB) syncForVLogGC(r *vclock.Runner) error {
	if err := db.vlog.Sync(r); err != nil {
		return err
	}
	db.mu.Lock()
	logs := make([]*wal.Log, 0, len(db.imm)+1)
	for _, j := range db.imm {
		if j.log != nil {
			logs = append(logs, j.log)
		}
	}
	if db.log != nil {
		logs = append(logs, db.log)
	}
	db.mu.Unlock()
	for _, lg := range logs {
		if err := lg.Sync(r); err != nil {
			return err
		}
	}
	return nil
}

// finishSegment punches a fully collected segment, or queues the punch
// while live iterators or snapshots could still dereference into it.
// New readers only ever observe the rewrites, which are newer versions.
func (db *DB) finishSegment(r *vclock.Runner, seg uint32) {
	db.vlog.MarkDead(seg)
	db.mu.Lock()
	if db.openIters > 0 || len(db.snapshots) > 0 {
		db.punchQueue = append(db.punchQueue, seg)
		db.mu.Unlock()
		return
	}
	db.mu.Unlock()
	db.vlog.Punch(r, seg)
}

// drainPunchQueue punches deferred segments once no reader can hold a
// pointer into them.
func (db *DB) drainPunchQueue(r *vclock.Runner) {
	db.mu.Lock()
	if len(db.punchQueue) == 0 || db.openIters > 0 || len(db.snapshots) > 0 {
		db.mu.Unlock()
		return
	}
	q := db.punchQueue
	db.punchQueue = nil
	db.mu.Unlock()
	for _, seg := range q {
		db.vlog.Punch(r, seg)
	}
}
