package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"kvaccel/internal/metrics"
	"kvaccel/internal/rpc"
	"kvaccel/internal/vclock"
)

// Dialer opens simulated connections to a serving tier; server.Server
// satisfies it. A nil return means the connection was refused (backlog
// full) or the server is shut down.
type Dialer interface {
	Connect(r *vclock.Runner, label string) *rpc.Conn
}

// ServeConfig shapes a serving-tier load run: N client runners issue a
// YCSB mix over RPC connections instead of calling the engine directly,
// so every op pays the network, accept-queue, linger, engine, and reply
// phases the serving tier models.
type ServeConfig struct {
	// Clients is the number of concurrent client connections.
	Clients int
	// Tenants spreads clients round-robin over tenant IDs (default 1).
	Tenants int
	// Mix is the YCSB operation mix each client draws from.
	Mix MixSpec
	// KeySpace and ValueSize shape keys and values, as in Config.
	KeySpace  int
	ValueSize int
	// Duration is the virtual measurement window per client.
	Duration time.Duration
	// Seed feeds the per-client generators.
	Seed int64
	// OpenLoop switches from closed-loop (send, await reply, repeat —
	// throughput finds the system's capacity) to open-loop (send every
	// Interval regardless of replies — offered load is fixed and overload
	// surfaces as shed or queueing, never as generator back-off).
	OpenLoop bool
	// Interval is the open-loop per-client interarrival time.
	Interval time.Duration
	// DrainGrace bounds how long an open-loop client waits for straggler
	// replies after its send window closes (default 2s). Replies still
	// missing after the grace count as Dropped.
	DrainGrace time.Duration
	// RetryBackoff, when positive, makes closed-loop clients pause after
	// a RETRY_LATER before issuing their next op.
	RetryBackoff time.Duration
}

// DefaultServeConfig returns a 1024-client closed-loop YCSB-A run with
// serving-sized values (small enough that batching, not value transfer,
// dominates the per-op cost).
func DefaultServeConfig() ServeConfig {
	mix, _ := Mix("ycsb-a")
	return ServeConfig{
		Clients:    1024,
		Tenants:    4,
		Mix:        mix,
		KeySpace:   100_000,
		ValueSize:  128,
		Duration:   10 * time.Second,
		Seed:       1,
		DrainGrace: 2 * time.Second,
	}
}

func (c ServeConfig) normalize() ServeConfig {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Tenants < 1 {
		c.Tenants = 1
	}
	if c.KeySpace < 1 {
		c.KeySpace = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 2 * time.Second
	}
	if c.OpenLoop && c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	return c
}

// ServeTenantStats is one tenant's client-side accounting.
type ServeTenantStats struct {
	Sent  int64
	OK    int64 // OK + NOT_FOUND: requests the engine answered
	Retry int64 // RETRY_LATER responses
}

// serveTenantRow is the atomic backing store for ServeTenantStats.
type serveTenantRow struct {
	sent, ok, retry atomic.Int64
}

// ServeRecorder accumulates client-observed measurements across all
// clients of a serving run. Counters are atomic and the histogram locks
// internally, so every client shares one recorder.
type ServeRecorder struct {
	sent       atomic.Int64
	okOps      atomic.Int64
	notFound   atomic.Int64
	retry      atomic.Int64
	errs       atomic.Int64
	dropped    atomic.Int64 // open-loop sends never answered
	connFailed atomic.Int64
	torn       atomic.Int64

	// Latency is the client-observed request latency: send start to
	// response decode, network and all server phases included.
	Latency *metrics.Histogram

	// Per-phase residency totals over answered requests, in virtual
	// nanoseconds. Accept/linger/engine/reply come from the response's
	// timing annex; network is the remainder of the client-observed
	// total, so the five phases sum to it exactly.
	netNS    atomic.Int64
	acceptNS atomic.Int64
	lingerNS atomic.Int64
	engineNS atomic.Int64
	replyNS  atomic.Int64

	tenants []*serveTenantRow
}

// NewServeRecorder returns an empty recorder sized for tenants.
func NewServeRecorder(tenants int) *ServeRecorder {
	if tenants < 1 {
		tenants = 1
	}
	rec := &ServeRecorder{Latency: metrics.NewHistogram()}
	rec.tenants = make([]*serveTenantRow, tenants)
	for i := range rec.tenants {
		rec.tenants[i] = &serveTenantRow{}
	}
	return rec
}

// record books one answered request.
func (rec *ServeRecorder) record(total time.Duration, resp *rpc.Response, tenant int) {
	rec.Latency.Observe(total)
	annex := resp.Timing.Sum()
	tot := uint64(total)
	if annex > tot {
		annex = tot // server phases can round past a tiny client total
	}
	rec.netNS.Add(int64(tot - annex))
	rec.acceptNS.Add(int64(resp.Timing.AcceptNS))
	rec.lingerNS.Add(int64(resp.Timing.LingerNS))
	rec.engineNS.Add(int64(resp.Timing.EngineNS))
	rec.replyNS.Add(int64(resp.Timing.ReplyNS))
	row := rec.tenants[tenant%len(rec.tenants)]
	switch resp.Status {
	case rpc.StatusOK:
		rec.okOps.Add(1)
		row.ok.Add(1)
	case rpc.StatusNotFound:
		rec.notFound.Add(1)
		row.ok.Add(1)
	case rpc.StatusRetryLater:
		rec.retry.Add(1)
		row.retry.Add(1)
	default:
		rec.errs.Add(1)
	}
}

// ServeStats is a snapshot of a serving run's client-side accounting.
type ServeStats struct {
	Sent       int64
	OK         int64 // StatusOK responses
	NotFound   int64
	Retry      int64 // RETRY_LATER (shed) responses
	Errs       int64
	Dropped    int64 // open-loop sends never answered (conn torn down)
	ConnFailed int64 // refused connections
	TornFrames int64

	Latency *metrics.Histogram

	NetNS    int64
	AcceptNS int64
	LingerNS int64
	EngineNS int64
	ReplyNS  int64

	Tenants []ServeTenantStats
}

// Snapshot captures the recorder's current totals.
func (rec *ServeRecorder) Snapshot() ServeStats {
	s := ServeStats{
		Sent:       rec.sent.Load(),
		OK:         rec.okOps.Load(),
		NotFound:   rec.notFound.Load(),
		Retry:      rec.retry.Load(),
		Errs:       rec.errs.Load(),
		Dropped:    rec.dropped.Load(),
		ConnFailed: rec.connFailed.Load(),
		TornFrames: rec.torn.Load(),
		Latency:    rec.Latency,
		NetNS:      rec.netNS.Load(),
		AcceptNS:   rec.acceptNS.Load(),
		LingerNS:   rec.lingerNS.Load(),
		EngineNS:   rec.engineNS.Load(),
		ReplyNS:    rec.replyNS.Load(),
	}
	s.Tenants = make([]ServeTenantStats, len(rec.tenants))
	for i, row := range rec.tenants {
		s.Tenants[i] = ServeTenantStats{
			Sent:  row.sent.Load(),
			OK:    row.ok.Load(),
			Retry: row.retry.Load(),
		}
	}
	return s
}

// Answered is how many requests received any response.
func (s ServeStats) Answered() int64 { return s.OK + s.NotFound + s.Retry + s.Errs }

// Goodput is engine-answered (non-shed, non-error) ops per second.
func (s ServeStats) Goodput(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(s.OK+s.NotFound) / elapsed.Seconds()
}

// ShedRate is the fraction of answered requests that were shed.
func (s ServeStats) ShedRate() float64 {
	a := s.Answered()
	if a == 0 {
		return 0
	}
	return float64(s.Retry) / float64(a)
}

// PhaseCoverage reports what fraction of the total client-observed
// latency mass the five-phase decomposition explains (1.0 up to
// clamping, by construction: network is measured as the remainder).
func (s ServeStats) PhaseCoverage() float64 {
	mass := float64(s.Latency.Mean().Nanoseconds()) * float64(s.Latency.Count())
	if mass <= 0 {
		return 0
	}
	return float64(s.NetNS+s.AcceptNS+s.LingerNS+s.EngineNS+s.ReplyNS) / mass
}

// ServeLoad is the shared cross-client state of one serving run: the
// config, one zipfian generator (read-only after construction), the
// insert frontier, and the recorder.
type ServeLoad struct {
	cfg   ServeConfig
	zipf  *zipfGen
	state *MixedState
	Rec   *ServeRecorder

	// cumulative mix thresholds
	cRead, cUpdate, cInsert, cScan float64
	maxScan                        int
}

// NewServeLoad builds the shared state for a run whose keyspace was
// preloaded with `preloaded` sequential keys.
func NewServeLoad(cfg ServeConfig, preloaded int) *ServeLoad {
	cfg = cfg.normalize()
	l := &ServeLoad{
		cfg:   cfg,
		zipf:  newZipf(cfg.KeySpace, cfg.Mix.ZipfTheta),
		state: NewMixedState(preloaded),
		Rec:   NewServeRecorder(cfg.Tenants),
	}
	l.cRead = cfg.Mix.ReadPct
	l.cUpdate = l.cRead + cfg.Mix.UpdatePct
	l.cInsert = l.cUpdate + cfg.Mix.InsertPct
	l.cScan = l.cInsert + cfg.Mix.ScanPct
	l.maxScan = cfg.Mix.MaxScanLen
	if l.maxScan <= 0 {
		l.maxScan = 100
	}
	return l
}

// Config returns the normalized config the load was built with.
func (l *ServeLoad) Config() ServeConfig { return l.cfg }

// op kinds drawn from the mix.
const (
	serveRead = iota
	serveUpdate
	serveInsert
	serveScan
	serveRMW
)

// pickKey draws a request key per the mix's distribution.
func (l *ServeLoad) pickKey(rng *rand.Rand) int {
	switch l.cfg.Mix.Dist {
	case DistZipfian:
		return scramble(l.zipf.next(rng), l.cfg.KeySpace)
	case DistLatest:
		latest := int(l.state.Inserted()) - 1
		k := latest - l.zipf.next(rng)
		if k < 0 {
			k = 0
		}
		return k
	default:
		return rng.Intn(l.cfg.KeySpace)
	}
}

// pickOp draws an op kind from the mix thresholds.
func (l *ServeLoad) pickOp(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < l.cRead:
		return serveRead
	case u < l.cUpdate:
		return serveUpdate
	case u < l.cInsert:
		return serveInsert
	case u < l.cScan:
		return serveScan
	default:
		return serveRMW
	}
}

// buildRequest materializes one request for op kind; RMW callers issue
// the read themselves and follow with the update this returns.
func (l *ServeLoad) buildRequest(rng *rand.Rand, kind int, id uint64, tenant uint8) *rpc.Request {
	req := &rpc.Request{ID: id, Tenant: tenant}
	switch kind {
	case serveRead:
		req.Op = rpc.OpGet
		req.Key = Key(l.pickKey(rng))
	case serveUpdate, serveRMW:
		n := l.pickKey(rng)
		req.Op = rpc.OpPut
		req.Key = Key(n)
		req.Value = MakeValue(n, l.cfg.ValueSize)
	case serveInsert:
		n := int(l.state.frontier.Add(1)) - 1
		req.Op = rpc.OpPut
		req.Key = Key(n)
		req.Value = MakeValue(n, l.cfg.ValueSize)
	case serveScan:
		req.Op = rpc.OpScan
		req.Key = Key(l.pickKey(rng))
		req.Limit = uint32(rng.Intn(l.maxScan) + 1)
	}
	return req
}

// Client runs one client (id) against the dialer until the duration
// elapses, closed- or open-loop per the config. clk spawns the open-loop
// receiver runner; the closed loop never uses it.
func (l *ServeLoad) Client(r *vclock.Runner, clk *vclock.Clock, d Dialer, id int) {
	if l.cfg.OpenLoop {
		l.openLoop(r, clk, d, id)
	} else {
		l.closedLoop(r, d, id)
	}
}

// call sends req and blocks for its response — the closed-loop inner
// step. Returns nil when the connection died.
func (l *ServeLoad) call(r *vclock.Runner, conn *rpc.Conn, dec *rpc.Decoder, req *rpc.Request, tenant int) *rpc.Response {
	frame := rpc.AppendRequest(nil, req)
	t0 := r.Now()
	l.Rec.sent.Add(1)
	l.Rec.tenants[tenant].sent.Add(1)
	if err := conn.Send(r, frame); err != nil {
		l.Rec.dropped.Add(1)
		return nil
	}
	for {
		payload, ok, err := dec.Next()
		if err != nil {
			l.Rec.torn.Add(1)
			l.Rec.dropped.Add(1)
			return nil
		}
		if ok {
			resp, derr := rpc.DecodeResponse(payload)
			if derr != nil {
				l.Rec.torn.Add(1)
				l.Rec.dropped.Add(1)
				return nil
			}
			l.Rec.record(r.Now().Sub(t0), resp, tenant)
			return resp
		}
		data, _, alive := conn.Recv(r)
		if !alive {
			l.Rec.dropped.Add(1)
			return nil
		}
		dec.Feed(data)
	}
}

// closedLoop is the capacity-probing client: one op in flight, the next
// issued when the reply lands.
func (l *ServeLoad) closedLoop(r *vclock.Runner, d Dialer, id int) {
	conn := d.Connect(r, fmt.Sprintf("client.%d", id))
	if conn == nil {
		l.Rec.connFailed.Add(1)
		return
	}
	defer conn.Close()
	dec := &rpc.Decoder{}
	rng := rand.New(rand.NewSource(l.cfg.Seed + int64(id)*7919))
	tenant := id % l.cfg.Tenants
	deadline := r.Now().Add(l.cfg.Duration)
	var seq uint64
	for deadline.Sub(r.Now()) > 0 {
		kind := l.pickOp(rng)
		if kind == serveRMW {
			// Read half first; fall through to the update half below.
			get := &rpc.Request{ID: reqID(id, seq), Tenant: uint8(tenant), Op: rpc.OpGet}
			seq++
			get.Key = Key(l.pickKey(rng))
			if l.call(r, conn, dec, get, tenant) == nil {
				return
			}
		}
		req := l.buildRequest(rng, kind, reqID(id, seq), uint8(tenant))
		seq++
		resp := l.call(r, conn, dec, req, tenant)
		if resp == nil {
			return
		}
		if resp.Status == rpc.StatusRetryLater && l.cfg.RetryBackoff > 0 {
			r.Sleep(l.cfg.RetryBackoff)
		}
	}
}

// openState tracks an open-loop client's in-flight requests.
type openState struct {
	mu          sync.Mutex
	outstanding map[uint64]vclock.Time // request ID -> send start
}

// openLoop is the offered-load client: a sender issuing one request per
// interval on schedule (with catch-up, so the offered rate holds through
// server-side queueing) and a receiver runner booking replies as they
// arrive, any order.
func (l *ServeLoad) openLoop(r *vclock.Runner, clk *vclock.Clock, d Dialer, id int) {
	conn := d.Connect(r, fmt.Sprintf("client.%d", id))
	if conn == nil {
		l.Rec.connFailed.Add(1)
		return
	}
	tenant := id % l.cfg.Tenants
	st := &openState{outstanding: make(map[uint64]vclock.Time)}

	clk.Go(fmt.Sprintf("client.%d.recv", id), func(rr *vclock.Runner) {
		dec := &rpc.Decoder{}
		for {
			data, _, ok := conn.Recv(rr)
			if !ok {
				return
			}
			dec.Feed(data)
			for {
				payload, ok, err := dec.Next()
				if err != nil {
					l.Rec.torn.Add(1)
					return
				}
				if !ok {
					break
				}
				resp, derr := rpc.DecodeResponse(payload)
				if derr != nil {
					l.Rec.torn.Add(1)
					continue
				}
				st.mu.Lock()
				t0, known := st.outstanding[resp.ID]
				delete(st.outstanding, resp.ID)
				st.mu.Unlock()
				if known {
					l.Rec.record(rr.Now().Sub(t0), resp, tenant)
				}
			}
		}
	})

	rng := rand.New(rand.NewSource(l.cfg.Seed + int64(id)*7919))
	start := r.Now()
	deadline := start.Add(l.cfg.Duration)
	var seq uint64
	for i := 0; ; i++ {
		due := start.Add(l.cfg.Interval * time.Duration(i))
		if due.Sub(deadline) >= 0 {
			break
		}
		if w := due.Sub(r.Now()); w > 0 {
			r.Sleep(w)
		}
		kind := l.pickOp(rng)
		if kind == serveRMW {
			kind = serveUpdate // open loop keeps one request per slot
		}
		req := l.buildRequest(rng, kind, reqID(id, seq), uint8(tenant))
		seq++
		frame := rpc.AppendRequest(nil, req)
		st.mu.Lock()
		st.outstanding[req.ID] = r.Now()
		st.mu.Unlock()
		l.Rec.sent.Add(1)
		l.Rec.tenants[tenant].sent.Add(1)
		if err := conn.Send(r, frame); err != nil {
			st.mu.Lock()
			delete(st.outstanding, req.ID)
			st.mu.Unlock()
			l.Rec.dropped.Add(1)
			return
		}
	}

	// Drain: wait for stragglers up to the grace, then cut the
	// connection; whatever is still outstanding counts as dropped.
	graceEnd := r.Now().Add(l.cfg.DrainGrace)
	for {
		st.mu.Lock()
		n := len(st.outstanding)
		st.mu.Unlock()
		if n == 0 {
			break
		}
		if graceEnd.Sub(r.Now()) <= 0 {
			l.Rec.dropped.Add(int64(n))
			break
		}
		r.Sleep(200 * time.Microsecond)
	}
	conn.Close()
}

// reqID packs a globally unique request ID from client and sequence.
func reqID(client int, seq uint64) uint64 {
	return uint64(client)<<40 | (seq & (1<<40 - 1))
}
