// Package workload reimplements the db_bench workloads of Table IV:
// fillrandom (A), readwhilewriting at 9:1 and 8:2 write/read mixes (B,
// C), and seekrandom with Seek + 1024 Next after a bulk load (D). Key and
// value shapes follow the paper: fixed-width keys over a bounded
// keyspace, constant-size synthetic values.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"kvaccel/internal/encoding"
	"kvaccel/internal/metrics"
	"kvaccel/internal/vclock"
)

// Iterator is the engine-neutral range cursor.
type Iterator interface {
	Seek(key []byte)
	Next()
	Valid() bool
	Key() []byte
	Value() []byte
	Close()
}

// Engine is the KV interface the workloads drive; lsm.DB (RocksDB/ADOC
// baselines) and core.DB (KVACCEL) both adapt to it.
type Engine interface {
	Put(r *vclock.Runner, key, value []byte) error
	Delete(r *vclock.Runner, key []byte) error
	Get(r *vclock.Runner, key []byte) (value []byte, ok bool, err error)
	NewIterator(r *vclock.Runner) Iterator
	Flush(r *vclock.Runner)
}

// Config shapes a workload run.
type Config struct {
	// KeySpace bounds the random key domain (db_bench --num).
	KeySpace int
	// ValueSize is the constant value length (4 KiB in Table IV).
	ValueSize int
	// Duration is the virtual run length.
	Duration time.Duration
	// Seed feeds the generators.
	Seed int64
	// ReadFraction is reads/(reads+writes) for readwhilewriting: 0.1 for
	// workload B (9:1), 0.2 for workload C (8:2).
	ReadFraction float64
	// Queries and NextsPerSeek shape seekrandom (workload D).
	Queries      int
	NextsPerSeek int
	// WriteInterval, when positive, paces this writer to a fixed offered
	// load (db_bench's -benchmark_write_rate_limit, YCSB's target
	// throughput): put i is issued no earlier than start + i*interval,
	// with catch-up — a put delayed past its slot is followed by the next
	// one immediately, so the offered rate is held regardless of stalls.
	// Zero keeps the open-throttle behavior.
	WriteInterval time.Duration
}

// DefaultConfig is the scaled Table IV setup: 4 KiB values over a 100 K
// keyspace for 60 virtual seconds (1/10 of the paper's 600 s).
func DefaultConfig() Config {
	return Config{
		KeySpace:     100_000,
		ValueSize:    4096,
		Duration:     60 * time.Second,
		Seed:         1,
		NextsPerSeek: 1024,
		Queries:      60,
	}
}

// Key renders key number n in db_bench's fixed-width format.
func Key(n int) []byte { return encoding.Key16(uint64(n)) }

// MakeValue builds a deterministic value of the configured size for key
// n; contents are verifiable without storing a reference copy.
func MakeValue(n, size int) []byte {
	v := make([]byte, size)
	pattern := fmt.Sprintf("%016x", uint64(n)*0x9e3779b97f4a7c15)
	for i := range v {
		v[i] = pattern[i%16]
	}
	return v
}

// Recorder accumulates a run's measurements: op counts, per-second
// throughput series, and latency histograms.
type Recorder struct {
	writes atomic.Int64
	reads  atomic.Int64
	scans  atomic.Int64

	WriteLatency *metrics.Histogram
	ReadLatency  *metrics.Histogram
	ScanLatency  *metrics.Histogram
	WriteSeries  *metrics.Series // Kops/s per second
	ReadSeries   *metrics.Series

	lastWrites int64
	lastReads  int64
}

// NewRecorder returns an empty recorder with named series.
func NewRecorder(name string) *Recorder {
	return &Recorder{
		WriteLatency: metrics.NewHistogram(),
		ReadLatency:  metrics.NewHistogram(),
		ScanLatency:  metrics.NewHistogram(),
		WriteSeries:  metrics.NewSeries(name + ".write-kops"),
		ReadSeries:   metrics.NewSeries(name + ".read-kops"),
	}
}

// Writes returns the cumulative write count.
func (rec *Recorder) Writes() int64 { return rec.writes.Load() }

// Reads returns the cumulative read count.
func (rec *Recorder) Reads() int64 { return rec.reads.Load() }

// Scans returns the cumulative range-scan count (mixed workloads only).
func (rec *Recorder) Scans() int64 { return rec.scans.Load() }

// Sample appends one throughput point at time t (in the series' time
// unit), normalizing the ops delta over the sampling interval to Kops/s.
func (rec *Recorder) Sample(t float64, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	w, rd := rec.writes.Load(), rec.reads.Load()
	rec.WriteSeries.Append(t, float64(w-rec.lastWrites)/1000/interval.Seconds())
	rec.ReadSeries.Append(t, float64(rd-rec.lastReads)/1000/interval.Seconds())
	rec.lastWrites, rec.lastReads = w, rd
}

// FillRandom runs workload A on the calling runner: one write thread
// issuing random-key puts until the deadline — at full speed, or on the
// cfg.WriteInterval schedule when a fixed offered load is configured.
func FillRandom(r *vclock.Runner, eng Engine, cfg Config, rec *Recorder) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := r.Now()
	for i := 0; r.Now().Sub(start) < cfg.Duration; i++ {
		if cfg.WriteInterval > 0 {
			due := start.Add(cfg.WriteInterval * time.Duration(i))
			if now := r.Now(); due.Sub(now) > 0 {
				r.Sleep(due.Sub(now))
			}
		}
		n := rng.Intn(cfg.KeySpace)
		t0 := r.Now()
		if err := eng.Put(r, Key(n), MakeValue(n, cfg.ValueSize)); err != nil {
			return
		}
		rec.WriteLatency.Observe(r.Now().Sub(t0))
		rec.writes.Add(1)
	}
}

// FillSequential loads n keys in order (the workload-D preload).
func FillSequential(r *vclock.Runner, eng Engine, cfg Config, n int) {
	for i := 0; i < n; i++ {
		if err := eng.Put(r, Key(i), MakeValue(i, cfg.ValueSize)); err != nil {
			return
		}
	}
	eng.Flush(r)
}

// ReadWhileWriting runs workloads B/C: the calling runner writes at full
// speed while a companion reader runner issues point gets, paced so reads
// are cfg.ReadFraction of total operations. It returns when the write
// deadline passes; the reader stops with it.
func ReadWhileWriting(r *vclock.Runner, clk *vclock.Clock, eng Engine, cfg Config, rec *Recorder) {
	var done atomic.Bool
	readsPerWrite := cfg.ReadFraction / (1 - cfg.ReadFraction)
	clk.Go("workload.reader", func(rr *vclock.Runner) {
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		for !done.Load() {
			// Pace reads against completed writes to hold the ratio.
			target := int64(float64(rec.writes.Load()) * readsPerWrite)
			if rec.reads.Load() >= target {
				rr.Sleep(time.Millisecond)
				continue
			}
			n := rng.Intn(cfg.KeySpace)
			t0 := rr.Now()
			_, _, err := eng.Get(rr, Key(n))
			if err != nil {
				return
			}
			rec.ReadLatency.Observe(rr.Now().Sub(t0))
			rec.reads.Add(1)
		}
	})
	FillRandom(r, eng, cfg, rec)
	done.Store(true)
}

// SeekRandom runs workload D on the calling runner: random range queries
// of Seek + NextsPerSeek Nexts each. Every Seek and Next counts as one
// operation, matching db_bench's seekrandom accounting. It performs
// cfg.Queries queries (or runs until Duration, whichever first).
func SeekRandom(r *vclock.Runner, eng Engine, cfg Config, rec *Recorder) {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	start := r.Now()
	for q := 0; q < cfg.Queries; q++ {
		if cfg.Duration > 0 && r.Now().Sub(start) >= cfg.Duration {
			return
		}
		n := rng.Intn(cfg.KeySpace)
		it := eng.NewIterator(r)
		t0 := r.Now()
		it.Seek(Key(n))
		rec.reads.Add(1)
		for i := 0; i < cfg.NextsPerSeek && it.Valid(); i++ {
			it.Next()
			rec.reads.Add(1)
		}
		rec.ReadLatency.Observe(r.Now().Sub(t0))
		it.Close()
	}
}
