package workload

import (
	"math/rand"
	"testing"
	"time"

	"kvaccel/internal/vclock"
)

func TestMixPresets(t *testing.T) {
	for _, name := range MixNames() {
		spec, ok := Mix(name)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		sum := spec.ReadPct + spec.UpdatePct + spec.InsertPct + spec.ScanPct + spec.RMWPct
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s fractions sum to %v", name, sum)
		}
	}
	if _, ok := Mix("ycsb-q"); ok {
		t.Error("unknown preset accepted")
	}
	// Short aliases resolve too.
	if spec, ok := Mix("b"); !ok || spec.Name != "ycsb-b" {
		t.Errorf("alias b -> %+v ok=%v", spec, ok)
	}
}

func TestWithReadPct(t *testing.T) {
	spec, _ := Mix("ycsb-a")
	m := spec.WithReadPct(0.8)
	if m.ReadPct != 0.8 || m.UpdatePct < 0.199 || m.UpdatePct > 0.201 {
		t.Fatalf("rescaled mix: %+v", m)
	}
	// Pure-read spec grows an update share.
	c, _ := Mix("ycsb-c")
	m = c.WithReadPct(0.9)
	if m.ReadPct != 0.9 || m.UpdatePct < 0.099 || m.UpdatePct > 0.101 {
		t.Fatalf("pure-read rescale: %+v", m)
	}
}

// TestZipfianSkew: with theta 0.99 over 10k ranks, the hottest ~100
// ranks must absorb well over a third of the draws, and every draw must
// stay in range.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 10_000, 200_000
	z := newZipf(n, 0.99)
	rng := rand.New(rand.NewSource(42))
	var top int
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		if r < 100 {
			top++
		}
	}
	if frac := float64(top) / draws; frac < 0.35 {
		t.Fatalf("top-100 ranks got %.2f of draws, want >= 0.35", frac)
	}
}

// TestScrambleSpreads: scrambled hot ranks must not collapse to a
// contiguous prefix and must be collision-free for small rank sets.
func TestScrambleSpreads(t *testing.T) {
	const n = 100_000
	seen := map[int]bool{}
	var inPrefix int
	for r := 0; r < 64; r++ {
		k := scramble(r, n)
		if k < 0 || k >= n {
			t.Fatalf("scrambled key %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("collision at rank %d", r)
		}
		seen[k] = true
		if k < 1000 {
			inPrefix++
		}
	}
	if inPrefix > 8 {
		t.Fatalf("%d of 64 hot keys landed in the first 1%% of the keyspace", inPrefix)
	}
}

// TestRunMixedOpRatios runs ycsb-a against the fake engine and checks
// the realized op mix tracks the spec.
func TestRunMixedOpRatios(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(10 * time.Microsecond)
	cfg := Config{KeySpace: 1000, ValueSize: 64, Duration: time.Second, Seed: 7}
	spec, _ := Mix("ycsb-a")
	state := NewMixedState(cfg.KeySpace)
	rec := NewRecorder("test")
	clk.Go("load", func(r *vclock.Runner) {
		FillSequential(r, eng, cfg, cfg.KeySpace)
		if err := RunMixed(r, eng, cfg, spec, state, rec); err != nil {
			t.Errorf("RunMixed: %v", err)
		}
	})
	clk.Wait()
	total := rec.Reads() + rec.Writes()
	if total < 1000 {
		t.Fatalf("only %d ops in 2 virtual seconds", total)
	}
	frac := float64(rec.Reads()) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("read fraction %.2f, want ~0.5", frac)
	}
	if rec.ReadLatency.Count() == 0 || rec.WriteLatency.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
}

// TestRunMixedScansAndInserts runs ycsb-e (scan-heavy with inserts) and
// ycsb-d (latest-distribution reads) for basic liveness.
func TestRunMixedScansAndInserts(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(10 * time.Microsecond)
	cfg := Config{KeySpace: 100, ValueSize: 32, Duration: 100 * time.Millisecond, Seed: 3}
	state := NewMixedState(cfg.KeySpace)
	rec := NewRecorder("test")
	specE, _ := Mix("ycsb-e")
	specD, _ := Mix("ycsb-d")
	clk.Go("load", func(r *vclock.Runner) {
		FillSequential(r, eng, cfg, cfg.KeySpace)
		if err := RunMixed(r, eng, cfg, specE, state, rec); err != nil {
			t.Errorf("ycsb-e: %v", err)
		}
		if err := RunMixed(r, eng, cfg, specD, state, rec); err != nil {
			t.Errorf("ycsb-d: %v", err)
		}
	})
	clk.Wait()
	if rec.Scans() == 0 {
		t.Fatal("ycsb-e produced no scans")
	}
	if int64(rec.ScanLatency.Count()) != rec.Scans() {
		t.Fatalf("scan histogram count %d != scans %d", rec.ScanLatency.Count(), rec.Scans())
	}
	if state.Inserted() <= int64(cfg.KeySpace) {
		t.Fatal("no inserts advanced the frontier")
	}
	if rec.Reads() == 0 {
		t.Fatal("ycsb-d produced no reads")
	}
}

// TestRunMixedMultiClient shares one state across two client runners;
// insert frontiers must never collide (atomic claim).
func TestRunMixedMultiClient(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(10 * time.Microsecond)
	cfg := Config{KeySpace: 200, ValueSize: 32, Duration: 200 * time.Millisecond, Seed: 11}
	spec, _ := Mix("ycsb-d")
	state := NewMixedState(cfg.KeySpace)
	rec := NewRecorder("test")
	clk.Go("load", func(r *vclock.Runner) {
		FillSequential(r, eng, cfg, cfg.KeySpace)
		for c := 0; c < 2; c++ {
			c := c
			clk.Go("client", func(r *vclock.Runner) {
				ccfg := cfg
				ccfg.Seed += int64(c * 101)
				if err := RunMixed(r, eng, ccfg, spec, state, rec); err != nil {
					t.Errorf("client %d: %v", c, err)
				}
			})
		}
	})
	clk.Wait()
	if rec.Reads() == 0 || rec.Writes() == 0 {
		t.Fatal("multi-client run idle")
	}
}
