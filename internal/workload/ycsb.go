package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"

	"kvaccel/internal/vclock"
)

// Distribution selects how mixed-workload request keys are drawn.
type Distribution int

const (
	// DistUniform draws keys uniformly over the keyspace.
	DistUniform Distribution = iota
	// DistZipfian draws keys from a scrambled zipfian: a small hot set
	// absorbs most requests, spread across the keyspace by hashing so the
	// hot keys are not physically adjacent.
	DistZipfian
	// DistLatest skews toward the most recently inserted keys (YCSB's
	// "latest" distribution, workload D).
	DistLatest
)

func (d Distribution) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistZipfian:
		return "zipfian"
	case DistLatest:
		return "latest"
	}
	return "unknown"
}

// MixSpec is a YCSB-style operation mix: fractions must sum to 1.
type MixSpec struct {
	Name      string
	ReadPct   float64
	UpdatePct float64
	InsertPct float64
	ScanPct   float64
	RMWPct    float64 // read-modify-write (YCSB F)

	Dist       Distribution
	ZipfTheta  float64 // zipfian skew; 0 picks the YCSB default 0.99
	MaxScanLen int     // scan length upper bound; 0 picks 100
}

// Mix returns the named YCSB core-workload preset.
func Mix(name string) (MixSpec, bool) {
	switch strings.ToLower(name) {
	case "ycsb-a", "a":
		return MixSpec{Name: "ycsb-a", ReadPct: 0.5, UpdatePct: 0.5, Dist: DistZipfian}, true
	case "ycsb-b", "b":
		return MixSpec{Name: "ycsb-b", ReadPct: 0.95, UpdatePct: 0.05, Dist: DistZipfian}, true
	case "ycsb-c", "c":
		return MixSpec{Name: "ycsb-c", ReadPct: 1.0, Dist: DistZipfian}, true
	case "ycsb-d", "d":
		return MixSpec{Name: "ycsb-d", ReadPct: 0.95, InsertPct: 0.05, Dist: DistLatest}, true
	case "ycsb-e", "e":
		return MixSpec{Name: "ycsb-e", ScanPct: 0.95, InsertPct: 0.05, Dist: DistZipfian}, true
	case "ycsb-f", "f":
		return MixSpec{Name: "ycsb-f", ReadPct: 0.5, RMWPct: 0.5, Dist: DistZipfian}, true
	}
	return MixSpec{}, false
}

// MixNames lists the preset names for CLI help.
func MixNames() []string {
	return []string{"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f"}
}

// WithReadPct returns the spec with its read fraction forced to p and
// the remaining fractions rescaled proportionally to keep the mix
// summing to 1.
func (m MixSpec) WithReadPct(p float64) MixSpec {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rest := m.UpdatePct + m.InsertPct + m.ScanPct + m.RMWPct
	if rest <= 0 {
		// Pure-read spec: route the write share to updates.
		m.ReadPct, m.UpdatePct = p, 1-p
		return m
	}
	scale := (1 - p) / rest
	m.ReadPct = p
	m.UpdatePct *= scale
	m.InsertPct *= scale
	m.ScanPct *= scale
	m.RMWPct *= scale
	return m
}

// EffectiveTheta is the zipfian skew the generator actually uses: the
// YCSB default 0.99 when the spec leaves ZipfTheta unset.
func (m MixSpec) EffectiveTheta() float64 {
	if m.ZipfTheta <= 0 {
		return 0.99
	}
	return m.ZipfTheta
}

func (m MixSpec) String() string {
	return fmt.Sprintf("%s r%.0f/u%.0f/i%.0f/s%.0f/rmw%.0f %s",
		m.Name, m.ReadPct*100, m.UpdatePct*100, m.InsertPct*100,
		m.ScanPct*100, m.RMWPct*100, m.Dist)
}

// zipfGen is the classic YCSB/Gray bounded zipfian generator over ranks
// [0, n): rank 0 is the hottest. Ranks are scrambled into key indexes by
// the caller so hot keys spread over the keyspace.
type zipfGen struct {
	n                        int
	theta, alpha, zetan, eta float64
}

func zetaSum(n int, theta float64) float64 {
	var z float64
	for i := 1; i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func newZipf(n int, theta float64) *zipfGen {
	if theta <= 0 {
		theta = 0.99
	}
	z := &zipfGen{n: n, theta: theta}
	z.zetan = zetaSum(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaSum(2, theta)/z.zetan)
	return z
}

// next draws a rank in [0, n).
func (z *zipfGen) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// scramble spreads rank r over [0, n) with an FNV-1a step, so the hot
// set is not a contiguous key prefix (which would all land in one
// SST/shard and overstate cache locality).
func scramble(r, n int) int {
	h := uint64(r) ^ 0xcbf29ce484222325
	h *= 0x100000001b3
	h ^= h >> 33
	return int(h % uint64(n))
}

// MixedState is the cross-client shared state of a mixed run: the
// insert frontier (inserts append past the preloaded keyspace; the
// latest distribution reads against it).
type MixedState struct {
	frontier atomic.Int64
}

// NewMixedState starts the insert frontier after the preloaded keys.
func NewMixedState(preloaded int) *MixedState {
	st := &MixedState{}
	st.frontier.Store(int64(preloaded))
	return st
}

// Inserted returns how many keys exist (preload + inserts so far).
func (st *MixedState) Inserted() int64 { return st.frontier.Load() }

// RunMixed drives one client of a YCSB-style mixed workload on the
// calling runner until cfg.Duration elapses. Multiple clients may share
// eng, state, and rec; give each a distinct cfg.Seed.
func RunMixed(r *vclock.Runner, eng Engine, cfg Config, spec MixSpec, state *MixedState, rec *Recorder) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := newZipf(cfg.KeySpace, spec.ZipfTheta)
	maxScan := spec.MaxScanLen
	if maxScan <= 0 {
		maxScan = 100
	}
	// Cumulative op thresholds.
	cRead := spec.ReadPct
	cUpdate := cRead + spec.UpdatePct
	cInsert := cUpdate + spec.InsertPct
	cScan := cInsert + spec.ScanPct

	// pick draws a request key per the spec's distribution.
	pick := func() int {
		switch spec.Dist {
		case DistZipfian:
			return scramble(zipf.next(rng), cfg.KeySpace)
		case DistLatest:
			// Offset back from the newest key by a zipfian rank: rank 0 is
			// the most recent insert.
			latest := int(state.Inserted()) - 1
			k := latest - zipf.next(rng)
			if k < 0 {
				k = 0
			}
			return k
		default:
			return rng.Intn(cfg.KeySpace)
		}
	}

	start := r.Now()
	for r.Now().Sub(start) < cfg.Duration {
		u := rng.Float64()
		switch {
		case u < cRead:
			n := pick()
			t0 := r.Now()
			if _, _, err := eng.Get(r, Key(n)); err != nil {
				return err
			}
			rec.ReadLatency.Observe(r.Now().Sub(t0))
			rec.reads.Add(1)
		case u < cUpdate:
			n := pick()
			t0 := r.Now()
			if err := eng.Put(r, Key(n), MakeValue(n, cfg.ValueSize)); err != nil {
				return err
			}
			rec.WriteLatency.Observe(r.Now().Sub(t0))
			rec.writes.Add(1)
		case u < cInsert:
			n := int(state.frontier.Add(1)) - 1
			t0 := r.Now()
			if err := eng.Put(r, Key(n), MakeValue(n, cfg.ValueSize)); err != nil {
				return err
			}
			rec.WriteLatency.Observe(r.Now().Sub(t0))
			rec.writes.Add(1)
		case u < cScan:
			n := pick()
			length := rng.Intn(maxScan) + 1
			it := eng.NewIterator(r)
			t0 := r.Now()
			it.Seek(Key(n))
			for i := 0; i < length && it.Valid(); i++ {
				it.Next()
			}
			rec.ScanLatency.Observe(r.Now().Sub(t0))
			it.Close()
			rec.scans.Add(1)
		default: // read-modify-write
			n := pick()
			t0 := r.Now()
			if _, _, err := eng.Get(r, Key(n)); err != nil {
				return err
			}
			rec.ReadLatency.Observe(r.Now().Sub(t0))
			rec.reads.Add(1)
			t1 := r.Now()
			if err := eng.Put(r, Key(n), MakeValue(n, cfg.ValueSize)); err != nil {
				return err
			}
			rec.WriteLatency.Observe(r.Now().Sub(t1))
			rec.writes.Add(1)
		}
	}
	return nil
}
