package workload

import (
	"kvaccel"
	"kvaccel/internal/core"
	"kvaccel/internal/lsm"
	"kvaccel/internal/vclock"
)

// LSMEngine adapts lsm.DB (the RocksDB and ADOC baselines) to Engine.
type LSMEngine struct{ DB *lsm.DB }

// Put forwards to the Main-LSM.
func (e LSMEngine) Put(r *vclock.Runner, key, value []byte) error { return e.DB.Put(r, key, value) }

// Delete forwards to the Main-LSM.
func (e LSMEngine) Delete(r *vclock.Runner, key []byte) error { return e.DB.Delete(r, key) }

// Get forwards to the Main-LSM.
func (e LSMEngine) Get(r *vclock.Runner, key []byte) ([]byte, bool, error) {
	return e.DB.Get(r, key)
}

// NewIterator opens a Main-LSM range cursor.
func (e LSMEngine) NewIterator(r *vclock.Runner) Iterator { return e.DB.NewIterator(r) }

// Flush drains the memtable.
func (e LSMEngine) Flush(r *vclock.Runner) { e.DB.Flush(r) }

// KVAccelEngine adapts core.DB to Engine.
type KVAccelEngine struct{ DB *core.DB }

// Put writes through the KVACCEL controller.
func (e KVAccelEngine) Put(r *vclock.Runner, key, value []byte) error {
	return e.DB.Put(r, key, value)
}

// Delete writes a tombstone through the controller.
func (e KVAccelEngine) Delete(r *vclock.Runner, key []byte) error { return e.DB.Delete(r, key) }

// Get reads through the controller's metadata-directed path.
func (e KVAccelEngine) Get(r *vclock.Runner, key []byte) ([]byte, bool, error) {
	return e.DB.Get(r, key)
}

// NewIterator opens the dual-LSM merged cursor.
func (e KVAccelEngine) NewIterator(r *vclock.Runner) Iterator { return e.DB.NewIterator(r) }

// Flush drains the Main-LSM memtable.
func (e KVAccelEngine) Flush(r *vclock.Runner) { e.DB.Flush(r) }

// ShardedEngine adapts kvaccel.ShardedDB (the hash-partitioned
// front-end) to Engine.
type ShardedEngine struct{ DB *kvaccel.ShardedDB }

// Put routes to the owning shard's controller.
func (e ShardedEngine) Put(r *vclock.Runner, key, value []byte) error {
	return e.DB.Put(r, key, value)
}

// Delete routes a tombstone to the owning shard.
func (e ShardedEngine) Delete(r *vclock.Runner, key []byte) error { return e.DB.Delete(r, key) }

// Get routes to the owning shard's metadata-directed read path.
func (e ShardedEngine) Get(r *vclock.Runner, key []byte) ([]byte, bool, error) {
	return e.DB.Get(r, key)
}

// NewIterator opens the cross-shard merged cursor.
func (e ShardedEngine) NewIterator(r *vclock.Runner) Iterator { return e.DB.NewIterator(r) }

// Flush drains every shard's memtable.
func (e ShardedEngine) Flush(r *vclock.Runner) { e.DB.Flush(r) }
