package workload

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"kvaccel/internal/vclock"
)

// fakeEngine is an in-memory Engine with a configurable per-op latency.
type fakeEngine struct {
	mu      sync.Mutex
	data    map[string][]byte
	opDelay time.Duration
}

func newFakeEngine(d time.Duration) *fakeEngine {
	return &fakeEngine{data: map[string][]byte{}, opDelay: d}
}

func (e *fakeEngine) Put(r *vclock.Runner, key, value []byte) error {
	if e.opDelay > 0 {
		r.Sleep(e.opDelay)
	}
	e.mu.Lock()
	e.data[string(key)] = append([]byte(nil), value...)
	e.mu.Unlock()
	return nil
}

func (e *fakeEngine) Delete(r *vclock.Runner, key []byte) error {
	e.mu.Lock()
	delete(e.data, string(key))
	e.mu.Unlock()
	return nil
}

func (e *fakeEngine) Get(r *vclock.Runner, key []byte) ([]byte, bool, error) {
	if e.opDelay > 0 {
		r.Sleep(e.opDelay)
	}
	e.mu.Lock()
	v, ok := e.data[string(key)]
	e.mu.Unlock()
	return v, ok, nil
}

type fakeIter struct {
	keys [][]byte
	pos  int
}

func (e *fakeEngine) NewIterator(r *vclock.Runner) Iterator {
	if e.opDelay > 0 {
		r.Sleep(e.opDelay)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	it := &fakeIter{}
	for k := range e.data {
		it.keys = append(it.keys, []byte(k))
	}
	// Sorted order.
	for i := range it.keys {
		for j := i + 1; j < len(it.keys); j++ {
			if bytes.Compare(it.keys[j], it.keys[i]) < 0 {
				it.keys[i], it.keys[j] = it.keys[j], it.keys[i]
			}
		}
	}
	return it
}

func (it *fakeIter) Seek(key []byte) {
	it.pos = 0
	for it.pos < len(it.keys) && bytes.Compare(it.keys[it.pos], key) < 0 {
		it.pos++
	}
}
func (it *fakeIter) Next()         { it.pos++ }
func (it *fakeIter) Valid() bool   { return it.pos < len(it.keys) }
func (it *fakeIter) Key() []byte   { return it.keys[it.pos] }
func (it *fakeIter) Value() []byte { return nil }
func (it *fakeIter) Close()        {}

func (e *fakeEngine) Flush(r *vclock.Runner) {}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 16 || string(k) != "0000000000000042" {
		t.Fatalf("Key(42) = %q", k)
	}
}

func TestMakeValueDeterministic(t *testing.T) {
	a := MakeValue(7, 128)
	b := MakeValue(7, 128)
	c := MakeValue(8, 128)
	if !bytes.Equal(a, b) {
		t.Fatal("MakeValue not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("MakeValue identical for different keys")
	}
	if len(MakeValue(1, 4096)) != 4096 {
		t.Fatal("MakeValue wrong size")
	}
}

func TestFillRandomRespectsDuration(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(time.Millisecond) // 1 Kops/s
	rec := NewRecorder("t")
	cfg := Config{KeySpace: 1000, ValueSize: 64, Duration: 2 * time.Second, Seed: 1}
	clk.Go("writer", func(r *vclock.Runner) {
		FillRandom(r, eng, cfg, rec)
		if got := r.Now().Seconds(); got < 2.0 || got > 2.1 {
			t.Errorf("fillrandom ended at %vs, want ~2s", got)
		}
	})
	clk.Wait()
	if w := rec.Writes(); w < 1900 || w > 2100 {
		t.Fatalf("writes = %d, want ~2000 at 1ms/op over 2s", w)
	}
	if rec.WriteLatency.Count() != uint64(rec.Writes()) {
		t.Fatal("latency histogram count mismatch")
	}
}

func TestReadWhileWritingHoldsRatio(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(100 * time.Microsecond)
	rec := NewRecorder("t")
	cfg := Config{KeySpace: 1000, ValueSize: 64, Duration: 2 * time.Second, Seed: 1, ReadFraction: 0.2}
	clk.Go("writer", func(r *vclock.Runner) {
		ReadWhileWriting(r, clk, eng, cfg, rec)
	})
	clk.Wait()
	total := rec.Writes() + rec.Reads()
	frac := float64(rec.Reads()) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("read fraction = %.3f, want ~0.20 (writes=%d reads=%d)", frac, rec.Writes(), rec.Reads())
	}
}

func TestSeekRandomCountsSeeksAndNexts(t *testing.T) {
	clk := vclock.New()
	eng := newFakeEngine(0)
	rec := NewRecorder("t")
	clk.Go("loader", func(r *vclock.Runner) {
		FillSequential(r, eng, Config{ValueSize: 8}, 100)
		SeekRandom(r, eng, Config{KeySpace: 50, Queries: 5, NextsPerSeek: 10}, rec)
	})
	clk.Wait()
	// 5 queries x (1 seek + up to 10 nexts); keyspace 50 over 100 keys
	// means every seek has at least 10 following keys except near the end.
	if rec.Reads() < 40 || rec.Reads() > 55 {
		t.Fatalf("seekrandom ops = %d, want ~55", rec.Reads())
	}
}

func TestRecorderSampling(t *testing.T) {
	rec := NewRecorder("s")
	rec.writes.Store(500)
	rec.Sample(1, 500*time.Millisecond) // 500 ops in 0.5s = 1 Kops/s
	if rec.WriteSeries.Len() != 1 {
		t.Fatal("sample not recorded")
	}
	_, v := rec.WriteSeries.At(0)
	if v != 1.0 {
		t.Fatalf("sampled rate = %v Kops/s, want 1.0", v)
	}
	rec.writes.Store(500) // no new ops
	rec.Sample(2, 500*time.Millisecond)
	_, v = rec.WriteSeries.At(1)
	if v != 0 {
		t.Fatalf("idle sample = %v, want 0", v)
	}
}
