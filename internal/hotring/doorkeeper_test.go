package hotring

import (
	"math/rand"
	"testing"
)

// simulateUniform drives one-touch-dominated uniform traffic through c:
// every miss descends (simulated) and fills, the classic scan/uniform
// pattern that churns an unguarded cache. Returns hits observed during
// the run for the zipfian "hot" subset that is interleaved throughout.
func simulateUniform(c *Cache, seed int64, ops, coldSpace, hotKeys int) (hotHits int64) {
	rng := rand.New(rand.NewSource(seed))
	val := []byte("value-12345678")
	for i := 0; i < ops; i++ {
		var k []byte
		hot := i%4 == 0 // 25% of traffic hammers a small hot set
		if hot {
			k = key(rng.Intn(hotKeys))
		} else {
			k = key(hotKeys + rng.Intn(coldSpace)) // one-touch cold tail
		}
		if _, ok := c.Get(k); ok {
			if hot {
				hotHits++
			}
			continue
		}
		fill(c, k, val)
	}
	return hotHits
}

// TestDoorkeeperStopsUniformChurn is the A/B: identical traffic against
// an unguarded cache and a doorkeeper-guarded one. The guarded cache must
// admit far fewer one-touch cold keys (fills way down) while serving the
// hot subset at least as well.
func TestDoorkeeperStopsUniformChurn(t *testing.T) {
	// Small cache so cold-tail churn actually evicts hot entries.
	const capacity = 32 << 10
	const ops, coldSpace, hotKeys = 200_000, 100_000, 64

	plain := New(capacity, 4)
	plainHot := simulateUniform(plain, 42, ops, coldSpace, hotKeys)
	ps := plain.Stats()

	guarded := New(capacity, 4)
	guarded.SetDoorkeeper(true)
	guardHot := simulateUniform(guarded, 42, ops, coldSpace, hotKeys)
	gs := guarded.Stats()

	t.Logf("plain:   hot-hits=%d fills=%d evictions=%d hit-rate=%.3f", plainHot, ps.Fills, ps.Evictions, ps.HitRate())
	t.Logf("guarded: hot-hits=%d fills=%d evictions=%d hit-rate=%.3f dk-rejected=%d dk-admitted=%d",
		guardHot, gs.Fills, gs.Evictions, gs.HitRate(), gs.DoorkeeperRejected, gs.DoorkeeperAdmitted)

	if gs.DoorkeeperRejected == 0 {
		t.Fatal("doorkeeper never rejected a first-touch fill")
	}
	if gs.DoorkeeperAdmitted == 0 {
		t.Fatal("doorkeeper never admitted a returning key")
	}
	// The guard's point: one-touch keys stop entering, so fills (and the
	// evictions they force) collapse.
	if gs.Fills >= ps.Fills/2 {
		t.Errorf("guarded fills = %d, want well under plain %d", gs.Fills, ps.Fills)
	}
	if gs.Evictions >= ps.Evictions {
		t.Errorf("guarded evictions = %d, want under plain %d", gs.Evictions, ps.Evictions)
	}
	// And the hot set must not get materially worse (ring eviction already
	// shields hot entries, so the doorkeeper's win is the churn collapse
	// above; hot keys just must not pay for it beyond their one extra
	// admission touch).
	if guardHot < plainHot*98/100 {
		t.Errorf("guarded hot hits = %d, more than 2%% below plain %d", guardHot, plainHot)
	}
}

// TestDoorkeeperOffByDefault pins that New returns an unguarded cache:
// the first fill of a fresh key inserts immediately.
func TestDoorkeeperOffByDefault(t *testing.T) {
	c := New(1<<20, 1)
	fill(c, key(1), []byte("v"))
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("first-touch fill did not insert with doorkeeper off")
	}
	if st := c.Stats(); st.DoorkeeperRejected != 0 || st.DoorkeeperAdmitted != 0 {
		t.Fatalf("doorkeeper counters moved while off: %+v", st)
	}
}

// TestDoorkeeperSecondChance pins the mechanism: first fill refused,
// second fill of the same key admitted.
func TestDoorkeeperSecondChance(t *testing.T) {
	c := New(1<<20, 1)
	c.SetDoorkeeper(true)
	fill(c, key(7), []byte("v"))
	if _, ok := c.Get(key(7)); ok {
		t.Fatal("first-touch fill was admitted")
	}
	fill(c, key(7), []byte("v"))
	if _, ok := c.Get(key(7)); !ok {
		t.Fatal("second-chance fill was not admitted")
	}
	st := c.Stats()
	if st.DoorkeeperRejected != 1 || st.DoorkeeperAdmitted != 1 {
		t.Fatalf("counters: %+v", st)
	}
}
