package hotring

import (
	"fmt"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }

func fill(c *Cache, k, v []byte) {
	c.FillIfUnchanged(k, v, c.BeginRead(k))
}

func TestBasicFillGetInvalidate(t *testing.T) {
	c := New(1<<20, 4)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache hit")
	}
	fill(c, key(1), []byte("v1"))
	v, ok := c.Get(key(1))
	if !ok || string(v) != "v1" {
		t.Fatalf("get after fill: %q %v", v, ok)
	}
	// Overwrite through a fresh fill.
	fill(c, key(1), []byte("v2"))
	if v, _ := c.Get(key(1)); string(v) != "v2" {
		t.Fatalf("get after refill: %q", v)
	}
	c.Invalidate(key(1))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("hit after invalidate")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Fills != 2 || st.Invalidations != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestGenerationGuard pins the write-vs-fill race rule: a fill whose
// BeginRead token predates an Invalidate on the same shard must be
// dropped, or a slow reader would resurrect a stale value over a newer
// write.
func TestGenerationGuard(t *testing.T) {
	c := New(1<<20, 1) // one shard: every key shares the generation
	tok := c.BeginRead(key(1))
	c.Invalidate(key(1)) // the concurrent write
	c.FillIfUnchanged(key(1), []byte("stale"), tok)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("stale fill installed past an invalidation")
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// A fresh token after the write fills normally.
	fill(c, key(1), []byte("fresh"))
	if v, ok := c.Get(key(1)); !ok || string(v) != "fresh" {
		t.Fatalf("fresh fill: %q %v", v, ok)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(1<<20, 4)
	for i := 0; i < 100; i++ {
		fill(c, key(i), []byte("v"))
	}
	tok := c.BeginRead(key(7))
	c.InvalidateAll()
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(key(i)); ok {
			t.Fatalf("key %d survived InvalidateAll", i)
		}
	}
	c.FillIfUnchanged(key(7), []byte("stale"), tok)
	if _, ok := c.Get(key(7)); ok {
		t.Fatal("stale fill installed past InvalidateAll")
	}
	if st := c.Stats(); st.Entries != 0 || st.Used != 0 {
		t.Fatalf("occupancy after InvalidateAll: %+v", st)
	}
}

// TestCapacityEviction fills far past capacity and checks the cache
// stays bounded while still serving recent traffic.
func TestCapacityEviction(t *testing.T) {
	capacity := int64(16 << 10)
	c := New(capacity, 2)
	val := make([]byte, 128)
	for i := 0; i < 1000; i++ {
		fill(c, key(i), val)
	}
	st := c.Stats()
	if st.Used > capacity {
		t.Fatalf("used %d exceeds capacity %d", st.Used, capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite overfill")
	}
	if st.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
}

// TestHotKeyStaysResident drives a zipf-ish pattern: hot keys read
// constantly among churning cold fills must stay resident (their sample
// counts never reach zero) while cold entries cycle out.
func TestHotKeyStaysResident(t *testing.T) {
	c := New(8<<10, 1)
	hot := key(0)
	fill(c, hot, []byte("hotvalue"))
	val := make([]byte, 64)
	for i := 1; i < 2000; i++ {
		for j := 0; j < 4; j++ {
			if _, ok := c.Get(hot); !ok {
				t.Fatalf("hot key evicted at fill %d", i)
			}
		}
		fill(c, key(i), val)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("cold churn produced no evictions")
	}
}

// TestHeadMigratesToHotEntry builds long collision rings (one shard,
// thousands of keys across 256 buckets) and hammers a subset so their
// access counts out-run their ring heads': the HotRing head-migration
// rule must fire.
func TestHeadMigratesToHotEntry(t *testing.T) {
	c := New(1<<20, 1)
	for i := 0; i < 4096; i++ {
		fill(c, key(i), []byte("v"))
	}
	// 64 hot keys: even if a few happen to already be their ring's head,
	// most are mid-ring and must trigger a migration.
	for round := 0; round < 32; round++ {
		for i := 0; i < 64; i++ {
			if _, ok := c.Get(key(i * 61)); !ok {
				t.Fatalf("hot key %d missing", i*61)
			}
		}
	}
	if st := c.Stats(); st.HeadMoves == 0 {
		t.Fatal("head pointer never migrated to a hot entry")
	}
}

// TestOrderedRingFindAbsent exercises the ordered-ring early-termination
// path: lookups for absent keys that collide into populated buckets must
// return miss, never loop.
func TestOrderedRingFindAbsent(t *testing.T) {
	c := New(1<<20, 1)
	for i := 0; i < 4096; i++ {
		fill(c, key(i), []byte("v"))
	}
	for i := 5000; i < 9096; i++ {
		if _, ok := c.Get(key(i)); ok {
			t.Fatalf("phantom hit for absent key %d", i)
		}
	}
	for i := 0; i < 4096; i += 97 {
		if v, ok := c.Get(key(i)); !ok || string(v) != "v" {
			t.Fatalf("resident key %d lost: %q %v", i, v, ok)
		}
	}
}

// TestNilCacheIsDisabled pins the nil-cache contract core relies on when
// the front cache is turned off.
func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c != New(0, 4) {
		t.Fatal("capacity 0 should return the nil disabled cache")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("nil cache hit")
	}
	c.FillIfUnchanged(key(1), []byte("v"), c.BeginRead(key(1)))
	c.Invalidate(key(1))
	c.InvalidateAll()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
}

// TestGetReturnsCopy: mutating a returned value must not corrupt the
// cached copy.
func TestGetReturnsCopy(t *testing.T) {
	c := New(1<<20, 1)
	fill(c, key(1), []byte("abc"))
	v, _ := c.Get(key(1))
	v[0] = 'X'
	if v2, _ := c.Get(key(1)); string(v2) != "abc" {
		t.Fatalf("cached value mutated: %q", v2)
	}
}
