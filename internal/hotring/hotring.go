// Package hotring implements the hot-key front cache that sits in front
// of the dual-LSM read path: a sharded hash index whose collision chains
// are ordered circular rings with hotness-aware head pointers, after
// HotRing (Chen et al., FAST '20). A lookup starts at the ring's head —
// which migrates toward the hottest entry of the ring — so skewed
// (zipfian) traffic finds its hot keys in O(1) ring steps instead of
// paying the full chain walk a classic bucket list would.
//
// Correctness under concurrent writes uses a per-shard generation
// counter: a reader snapshots the generation before reading the
// underlying engine (BeginRead) and fills only if no write invalidated
// the shard in between (FillIfUnchanged), so a stale value can never be
// installed over a newer write. Writers invalidate through Invalidate /
// InvalidateAll; both bump the generation first.
package hotring

import (
	"hash/maphash"
	"sync"
)

// defaultShards spreads lock contention; must be a power of two.
const defaultShards = 16

// bucketsPerShard sizes each shard's hash directory; must be a power of
// two. Rings stay short (a handful of entries) at any realistic load.
const bucketsPerShard = 256

// headBoost is how far an entry's sample-window access count must exceed
// the current head's before the head pointer migrates to it.
const headBoost = 4

// entry is one ring node. Rings are circular, sorted ascending by
// (tag, key) so a lookup can stop as soon as it passes the target's slot
// — the HotRing ordered-ring termination rule.
type entry struct {
	key   string
	value []byte
	next  *entry
	tag   uint32 // high hash bits, the primary sort key
	count uint32 // accesses in the current sample window
	// negative marks a confirmed-missing key: a hit on it answers
	// "absent" without descending the read pipeline. Installed only via
	// FillNegativeIfUnchanged, removed by the same invalidation writes
	// already perform, promoted in place by a later positive fill.
	negative bool
}

// doorkeeperWindow is how many first-touch recordings a shard's current
// doorkeeper set accumulates before it rotates to "previous" — roughly
// two windows of recently-seen-once keys are remembered at any time.
const doorkeeperWindow = 4 * bucketsPerShard

type shard struct {
	mu      sync.Mutex
	gen     uint64 // bumped by every invalidation touching this shard
	heads   [bucketsPerShard]*entry
	used    int64
	entries int64

	hits, misses    int64
	negHits         int64 // hits answered by a negative entry (⊆ hits)
	fills, rejected int64
	negFills        int64 // negative entries installed (not in fills)
	invalidations   int64
	evictions       int64
	headMoves       int64

	// Second-chance doorkeeper state: a new key's first fill attempt is
	// only recorded (and refused); the insert goes through when the key
	// is seen again while still remembered. dkCur rotates into dkPrev at
	// doorkeeperWindow recordings, so one-touch keys age out.
	dkCur, dkPrev          map[string]struct{}
	dkRejected, dkAdmitted int64

	evictCursor uint32 // round-robin bucket cursor for capacity eviction
}

// Cache is the sharded front cache. The zero value is not usable; build
// one with New. A nil *Cache is a valid disabled cache: Get always
// misses, every other method is a no-op.
type Cache struct {
	shards      []shard
	shardMask   uint64
	perShardCap int64
	seed        maphash.Seed
	doorkeeper  bool
}

// New returns a cache bounded to roughly capacityBytes across shards
// (shards is rounded up to a power of two; <= 0 picks the default).
// capacityBytes <= 0 returns nil — the disabled cache.
func New(capacityBytes int64, shards int) *Cache {
	if capacityBytes <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	return &Cache{
		shards:      make([]shard, n),
		shardMask:   uint64(n - 1),
		perShardCap: per,
		seed:        maphash.MakeSeed(),
	}
}

// SetDoorkeeper toggles second-chance admission: with it on, a key that
// has never been seen before is refused its first cache fill and only
// admitted when it returns while still remembered. Uniform (unskewed)
// traffic — where most keys are touched once and never again — then
// stops churning resident entries out, at the cost of hot keys needing
// two touches to enter. Safe to call at any time; existing entries are
// untouched.
func (c *Cache) SetDoorkeeper(on bool) {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if on && s.dkCur == nil {
			s.dkCur = make(map[string]struct{})
			s.dkPrev = make(map[string]struct{})
		}
		s.mu.Unlock()
	}
	c.doorkeeper = on
}

// admitNew decides whether a not-yet-resident key may be inserted.
// Callers hold s.mu.
func (s *shard) admitNew(c *Cache, key string) bool {
	if !c.doorkeeper {
		return true
	}
	if _, ok := s.dkCur[key]; ok {
		s.dkAdmitted++
		return true
	}
	if _, ok := s.dkPrev[key]; ok {
		s.dkAdmitted++
		return true
	}
	s.dkCur[key] = struct{}{}
	if len(s.dkCur) >= doorkeeperWindow {
		s.dkPrev = s.dkCur
		s.dkCur = make(map[string]struct{})
	}
	s.dkRejected++
	return false
}

func (c *Cache) locate(key []byte) (*shard, uint32, uint32) {
	h := maphash.Bytes(c.seed, key)
	s := &c.shards[h&c.shardMask]
	bucket := uint32(h>>8) % bucketsPerShard
	tag := uint32(h >> 40)
	return s, bucket, tag
}

// less orders ring entries by (tag, key) — the sort the ordered-ring
// termination rule depends on.
func less(aTag uint32, aKey string, bTag uint32, bKey string) bool {
	if aTag != bTag {
		return aTag < bTag
	}
	return aKey < bKey
}

// Get returns a copy of the cached value for key, if present. Negative
// entries read as misses here; use Lookup to distinguish "unknown" from
// "confirmed missing".
func (c *Cache) Get(key []byte) ([]byte, bool) {
	v, hit, negative := c.Lookup(key)
	if negative {
		return nil, false
	}
	return v, hit
}

// Lookup returns the cached state for key: hit=false means the cache
// knows nothing; hit with negative=false returns a copy of the value;
// hit with negative=true means the key was confirmed missing by an
// earlier full-path read and no write has touched it since. Either kind
// of hit bumps the entry's hotness and may migrate the ring's head — a
// hammered missing key is exactly as hot as a hammered present one.
func (c *Cache) Lookup(key []byte) (value []byte, hit, negative bool) {
	if c == nil {
		return nil, false, false
	}
	s, bucket, tag := c.locate(key)
	s.mu.Lock()
	e := s.find(bucket, tag, key)
	if e == nil {
		s.misses++
		s.mu.Unlock()
		return nil, false, false
	}
	s.hits++
	if e.negative {
		s.negHits++
	}
	e.count++
	// Hotness-aware head migration: once an entry clearly out-accesses
	// the current head within this sample window, lookups should start
	// at it. Counts reset so a cooled-down key yields the head back.
	if head := s.heads[bucket]; e != head && e.count > head.count+headBoost {
		s.heads[bucket] = e
		s.headMoves++
		for it := e.next; ; it = it.next {
			it.count = 0
			if it == e {
				break
			}
		}
		e.count = 1
	}
	neg := e.negative
	var v []byte
	if !neg {
		v = append([]byte(nil), e.value...)
	}
	s.mu.Unlock()
	return v, true, neg
}

// find walks the ordered ring from its head, stopping early once the
// target's slot has been passed (cyclic order check).
func (s *shard) find(bucket, tag uint32, key []byte) *entry {
	head := s.heads[bucket]
	if head == nil {
		return nil
	}
	k := string(key)
	cur := head
	for {
		if cur.tag == tag && cur.key == k {
			return cur
		}
		nxt := cur.next
		// Target absent if it sorts between cur and nxt in cyclic order:
		// strictly inside the gap, or outside the ring's span when the
		// gap wraps past the maximum element.
		curLT := less(cur.tag, cur.key, tag, k)  // cur < target
		tLTnxt := less(tag, k, nxt.tag, nxt.key) // target < next
		wrap := less(nxt.tag, nxt.key, cur.tag, cur.key) || nxt == cur
		if (curLT && tLTnxt) || (wrap && (curLT || tLTnxt)) {
			return nil
		}
		cur = nxt
		if cur == head {
			return nil
		}
	}
}

// BeginRead snapshots key's shard generation. Pass the token to
// FillIfUnchanged after reading the underlying engine; any write that
// invalidated the shard in between makes the fill a no-op.
func (c *Cache) BeginRead(key []byte) uint64 {
	if c == nil {
		return 0
	}
	s, _, _ := c.locate(key)
	s.mu.Lock()
	g := s.gen
	s.mu.Unlock()
	return g
}

// FillIfUnchanged installs key→value if the shard generation still
// matches token. The value is copied.
func (c *Cache) FillIfUnchanged(key, value []byte, token uint64) {
	if c == nil {
		return
	}
	s, bucket, tag := c.locate(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != token {
		s.rejected++
		return
	}
	size := int64(len(key) + len(value))
	if size > c.perShardCap {
		return
	}
	if e := s.find(bucket, tag, key); e != nil {
		// A positive fill promotes a negative entry in place: the same
		// generation check that protects values proves the key has since
		// been observed present with no intervening write.
		s.used += int64(len(value) - len(e.value))
		e.value = append([]byte(nil), value...)
		e.negative = false
		s.fills++
		s.evictOver(c.perShardCap)
		return
	}
	k := string(key)
	if !s.admitNew(c, k) {
		return
	}
	e := &entry{key: k, value: append([]byte(nil), value...), tag: tag}
	s.insert(bucket, e)
	s.used += size
	s.entries++
	s.fills++
	s.evictOver(c.perShardCap)
}

// FillNegativeIfUnchanged records key as confirmed-missing if the shard
// generation still matches token: the caller descended the full read
// path, found nothing, and no write invalidated the shard in between —
// so until the next invalidation, repeat reads of key can be answered
// "absent" from the ring. An existing entry (positive or negative) is
// left alone: a concurrent positive fill under the same generation means
// a racing reader actually found a value, and trusting it is safe.
func (c *Cache) FillNegativeIfUnchanged(key []byte, token uint64) {
	if c == nil {
		return
	}
	s, bucket, tag := c.locate(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != token {
		s.rejected++
		return
	}
	size := int64(len(key))
	if size > c.perShardCap {
		return
	}
	if s.find(bucket, tag, key) != nil {
		return
	}
	k := string(key)
	if !s.admitNew(c, k) {
		return
	}
	e := &entry{key: k, tag: tag, negative: true}
	s.insert(bucket, e)
	s.used += size
	s.entries++
	s.negFills++
	s.evictOver(c.perShardCap)
}

// insert links e into its bucket's ring, keeping (tag, key) order.
func (s *shard) insert(bucket uint32, e *entry) {
	head := s.heads[bucket]
	if head == nil {
		e.next = e
		s.heads[bucket] = e
		return
	}
	// Find the predecessor in cyclic order: the entry after which e
	// sorts, scanning the ring once from head.
	cur := head
	for {
		nxt := cur.next
		curLT := less(cur.tag, cur.key, e.tag, e.key)
		eLTnxt := less(e.tag, e.key, nxt.tag, nxt.key)
		wrap := less(nxt.tag, nxt.key, cur.tag, cur.key) || nxt == cur
		if (curLT && eLTnxt) || (wrap && (curLT || eLTnxt)) {
			e.next = nxt
			cur.next = e
			return
		}
		cur = nxt
		if cur == head {
			// Ring of equal elements (can't happen with distinct keys);
			// link after head for safety.
			e.next = head.next
			head.next = e
			return
		}
	}
}

// evictOver walks buckets round-robin evicting cold entries (sample
// count 0; hotter entries get their counts halved — a second chance)
// until the shard is back under cap. Repeated halving guarantees every
// entry eventually goes cold, so the loop always converges.
func (s *shard) evictOver(cap int64) {
	for pass := 0; s.used > cap && pass < 64*bucketsPerShard && s.entries > 0; pass++ {
		b := s.evictCursor % bucketsPerShard
		s.evictCursor++
		head := s.heads[b]
		if head == nil {
			continue
		}
		// Walk the ring once from head, dropping cold entries and
		// collecting survivors in ring order, then relink.
		var keep []*entry
		for cur, stop := head, false; !stop; {
			stop = cur.next == head
			if cur.count == 0 && s.used > cap {
				s.used -= int64(len(cur.key) + len(cur.value))
				s.entries--
				s.evictions++
			} else {
				cur.count /= 2
				keep = append(keep, cur)
			}
			cur = cur.next
		}
		if len(keep) == 0 {
			s.heads[b] = nil
			continue
		}
		for i, e := range keep {
			e.next = keep[(i+1)%len(keep)]
		}
		// The walk started at head, so if head survived it is keep[0];
		// otherwise keep[0] is the next entry in order — either way a
		// valid ring head.
		s.heads[b] = keep[0]
	}
}

// Invalidate removes key and bumps its shard generation, so in-flight
// readers that snapshotted before this write cannot fill a stale value.
func (c *Cache) Invalidate(key []byte) {
	if c == nil {
		return
	}
	s, bucket, tag := c.locate(key)
	s.mu.Lock()
	s.gen++
	s.invalidations++
	if e := s.find(bucket, tag, key); e != nil {
		s.remove(bucket, e)
	}
	s.mu.Unlock()
}

// remove unlinks e from its bucket's ring.
func (s *shard) remove(bucket uint32, e *entry) {
	if e.next == e {
		s.heads[bucket] = nil
	} else {
		prev := e
		for prev.next != e {
			prev = prev.next
		}
		prev.next = e.next
		if s.heads[bucket] == e {
			s.heads[bucket] = e.next
		}
	}
	s.used -= int64(len(e.key) + len(e.value))
	s.entries--
}

// InvalidateAll empties the cache and bumps every shard's generation —
// the big hammer for rollback merges and crash recovery, whose write
// sets are not enumerated per key.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.gen++
		s.invalidations++
		for b := range s.heads {
			s.heads[b] = nil
		}
		s.used, s.entries = 0, 0
		s.mu.Unlock()
	}
}

// Stats is a point-in-time aggregate across shards.
type Stats struct {
	Hits          int64
	NegHits       int64 // hits answered by negative entries (subset of Hits)
	Misses        int64
	Fills         int64
	NegFills      int64 // negative entries installed (not counted in Fills)
	Rejected      int64 // fills dropped by the generation check
	Invalidations int64
	Evictions     int64
	HeadMoves     int64
	Used          int64
	Entries       int64

	// Doorkeeper counters (all zero with the doorkeeper off):
	// DoorkeeperRejected counts first-touch fills refused, and
	// DoorkeeperAdmitted counts returning keys admitted on their second
	// chance.
	DoorkeeperRejected int64
	DoorkeeperAdmitted int64
}

// HitRate returns Hits/(Hits+Misses), or 0 with no traffic.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	var st Stats
	if c == nil {
		return st
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.NegHits += s.negHits
		st.Misses += s.misses
		st.Fills += s.fills
		st.NegFills += s.negFills
		st.Rejected += s.rejected
		st.Invalidations += s.invalidations
		st.Evictions += s.evictions
		st.HeadMoves += s.headMoves
		st.Used += s.used
		st.Entries += s.entries
		st.DoorkeeperRejected += s.dkRejected
		st.DoorkeeperAdmitted += s.dkAdmitted
		s.mu.Unlock()
	}
	return st
}
