package kvaccel

import (
	"kvaccel/internal/core"
	"kvaccel/internal/cpu"
	"kvaccel/internal/fs"
	"kvaccel/internal/iterkit"
	"kvaccel/internal/lsm"
	"kvaccel/internal/memtable"
	"kvaccel/internal/nvme"
	"kvaccel/internal/ssd"
	"kvaccel/internal/vclock"
)

// ShardedOptions configures a ShardedDB. The embedded Options apply to
// every shard; buffer budgets (memtable, levels, block cache, device
// DRAM) are divided by Shards so the sharded store spends the same total
// memory as an unsharded one. Options.Scale follows the same clamping
// rule as Open: values below 1 clamp to 1.
type ShardedOptions struct {
	Options
	// Shards is the number of independent write domains (clamped to at
	// least 1). Each shard owns a Main-LSM over its own slice of the
	// block region, a Dev-LSM over its own slice of the KV region, and
	// its own detector, metadata manager, and rollback scheduler.
	Shards int
}

// DefaultShardedOptions mirrors DefaultOptions with four shards.
func DefaultShardedOptions() ShardedOptions {
	return ShardedOptions{Options: DefaultOptions(), Shards: 4}
}

// ShardedDB is a hash-partitioned front-end over N independent KVACCEL
// shards that share one simulated machine: one virtual clock, one host
// CPU pool, and one dual-interface SSD (NAND array, FTL, PCIe link).
// Keys route to shards by hash, so writers on different shards never
// contend on a memtable, WAL, or metadata table — only on the shared
// hardware, which is the contention the paper models.
//
// Cross-shard semantics: Put/Delete/Get are exactly as strong as on DB.
// WriteBatch is atomic per shard but not across shards (each shard
// commits its sub-batch independently). NewIterator returns a merged
// cursor that is a point-in-time view per shard, not a global snapshot.
type ShardedDB struct {
	clk    *vclock.Clock
	device *ssd.Device
	pool   *cpu.Pool
	shards []*core.DB
	opt    ShardedOptions
	// release drops the clock hold taken in OpenSharded (see DB.release).
	release func()
}

// OpenSharded builds one simulated machine and N KVACCEL shards on it.
func OpenSharded(opt ShardedOptions) *ShardedDB {
	opt.Options = opt.Options.normalize()
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	n := opt.Shards

	clk := vclock.New()
	release := clk.Hold()
	dev := ssd.New(clk, opt.deviceConfig())
	pool := cpu.NewPool(opt.HostCores, "host-cpu")
	lopt := opt.engineOptions(pool, int64(n))

	kvSlices := dev.KVRegionSlices(n)
	blockPages := dev.BlockRegionPages()
	per := blockPages / n
	if per < 1 {
		panic("kvaccel: more shards than block-region pages")
	}

	copt := opt.coreOptions()
	// Like the other buffer budgets, the front cache splits evenly so the
	// sharded store spends the same total host DRAM as an unsharded one.
	copt.FrontCacheBytes /= int64(n)

	shards := make([]*core.DB, n)
	for i := 0; i < n; i++ {
		pages := per
		if i == n-1 {
			pages = blockPages - i*per // last shard absorbs the remainder
		}
		ns := dev.BlockNamespace(i*per, pages)
		fsys := fs.New(ns)
		slopt := lopt
		if opt.OffloadCompaction {
			// Each shard gets its own offload channel (queue pair) to the
			// shared merge executor; the executor serializes them on the
			// one ARM core, exactly like the shared NAND and PCIe paths.
			slopt.EnableCompactionOffload = true
			slopt.Offloader = ns.Offloader()
		}
		main := lsm.Open(clk, fsys, slopt)
		kv := core.Open(clk, main, kvSlices[i], copt)
		if !opt.EnableRedirection {
			kv.Detector().SetOverride(false)
		}
		shards[i] = kv
	}
	return &ShardedDB{clk: clk, device: dev, pool: pool, shards: shards, opt: opt, release: release}
}

// FNV-1a: deterministic across process restarts, so a reopened sharded
// store routes every key back to the shard that holds it.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func shardIndex(key []byte, n int) int {
	h := fnvOffset64
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// shard returns the core.DB owning key.
func (db *ShardedDB) shard(key []byte) *core.DB {
	return db.shards[shardIndex(key, len(db.shards))]
}

// ShardIndex returns the index of the shard that owns key — the routing
// hook serving tiers use to group requests by shard before committing
// them as per-shard batches.
func (db *ShardedDB) ShardIndex(key []byte) int {
	return shardIndex(key, len(db.shards))
}

// Run starts fn as a simulated thread named name.
func (db *ShardedDB) Run(name string, fn func(r *Runner)) {
	db.clk.Go(name, fn)
	db.release()
}

// Wait blocks until every simulated thread has exited.
func (db *ShardedDB) Wait() { db.clk.Wait() }

// Now returns the current virtual time.
func (db *ShardedDB) Now() vclock.Time { return db.clk.Now() }

// Clock exposes the shared virtual clock (companion runners, samplers).
func (db *ShardedDB) Clock() *vclock.Clock { return db.clk }

// Close shuts every shard down; in-flight work completes first.
func (db *ShardedDB) Close() {
	for _, s := range db.shards {
		s.Close()
	}
	db.release() // let the runners drain even if Run was never called
}

// Put stores a key-value pair on the owning shard.
func (db *ShardedDB) Put(r *Runner, key, value []byte) error {
	return db.shard(key).Put(r, key, value)
}

// Delete removes a key on the owning shard.
func (db *ShardedDB) Delete(r *Runner, key []byte) error {
	return db.shard(key).Delete(r, key)
}

// Get returns the newest value for key from the owning shard.
func (db *ShardedDB) Get(r *Runner, key []byte) (value []byte, ok bool, err error) {
	return db.shard(key).Get(r, key)
}

// WriteBatch splits b by owning shard and commits each sub-batch
// atomically on its shard. Atomicity is per shard: a reader may observe
// one shard's portion before another's commits.
func (db *ShardedDB) WriteBatch(r *Runner, b *Batch) error {
	if len(db.shards) == 1 {
		return db.shards[0].WriteBatch(r, b)
	}
	sub := make([]*lsm.Batch, len(db.shards))
	b.Ops(func(kind memtable.Kind, key, value []byte) {
		i := shardIndex(key, len(db.shards))
		if sub[i] == nil {
			sub[i] = &lsm.Batch{}
		}
		if kind == memtable.KindDelete {
			sub[i].Delete(key)
		} else {
			sub[i].Put(key, value)
		}
	})
	for i, sb := range sub {
		if sb == nil {
			continue
		}
		if err := db.shards[i].WriteBatch(r, sb); err != nil {
			return err
		}
	}
	return nil
}

// MergedIterator is the cross-shard range cursor: the k-way user-key
// merge of every shard's dual-LSM iterator.
type MergedIterator = iterkit.MergedCursor

// NewIterator opens a dual-LSM cursor on every shard and merges them in
// user-key order. Hash routing makes shard key sets disjoint, so the
// merge never sees duplicate keys.
func (db *ShardedDB) NewIterator(r *Runner) *MergedIterator {
	children := make([]iterkit.Cursor, len(db.shards))
	for i, s := range db.shards {
		children[i] = s.NewIterator(r)
	}
	return iterkit.NewMergedCursor(children)
}

// Flush forces every shard's Main-LSM memtable to disk, returning the
// first shard's background error, if any.
func (db *ShardedDB) Flush(r *Runner) error {
	var first error
	for _, s := range db.shards {
		if err := s.Flush(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Rollback drains every shard's Dev-LSM into its Main-LSM immediately.
func (db *ShardedDB) Rollback(r *Runner) error {
	var first error
	for _, s := range db.shards {
		if err := s.RollbackNow(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SimulateCrash drops every shard's volatile metadata table.
func (db *ShardedDB) SimulateCrash() {
	for _, s := range db.shards {
		s.SimulateCrash()
	}
}

// Recover restores a consistent view on every shard after a crash.
func (db *ShardedDB) Recover(r *Runner) error {
	var first error
	for _, s := range db.shards {
		if err := s.Recover(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NumShards returns the shard count.
func (db *ShardedDB) NumShards() int { return len(db.shards) }

// Shard exposes shard i's core.DB for monitoring and experiments.
func (db *ShardedDB) Shard(i int) *core.DB { return db.shards[i] }

// Device exposes the shared dual-interface SSD.
func (db *ShardedDB) Device() *ssd.Device { return db.device }

// QueueStats snapshots every NVMe queue pair on the shared device —
// each shard's block queue(s) and KV-region queue appear as separate
// entries.
func (db *ShardedDB) QueueStats() []nvme.QueueStats { return db.device.QueueStats() }

// ShardedStats is the system-wide view plus the per-shard breakdown.
// The embedded Stats has the same shape DB.Stats returns, with every
// counter summed across shards.
type ShardedStats struct {
	Stats
	// PerShard holds each shard's own counters, indexed by shard.
	PerShard []Stats
}

// Stats aggregates every shard's counters into one Stats plus the
// per-shard breakdown.
func (db *ShardedDB) Stats() ShardedStats {
	out := ShardedStats{PerShard: make([]Stats, len(db.shards))}
	for i, s := range db.shards {
		st := Stats{KVAccel: s.Stats(), Main: s.Main().Stats()}
		out.PerShard[i] = st
		out.Stats.KVAccel = out.Stats.KVAccel.Add(st.KVAccel)
		out.Stats.Main = out.Stats.Main.Add(st.Main)
	}
	return out
}
