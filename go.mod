module kvaccel

go 1.22
