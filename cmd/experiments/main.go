// Command experiments regenerates the paper's evaluation (§VI): every
// figure and table, printed as labeled summary lines plus plot-ready TSV
// series.
//
// Usage:
//
//	experiments -run all                # everything, paper order
//	experiments -run fig11              # one experiment
//	experiments -run fig12 -scale 20 -duration 30s   # quicker, smaller
//
// Scale semantics: device bandwidth and engine buffers divide by -scale
// and per-op CPU costs multiply by it, so -duration 600s/scale reproduces
// the paper's 600-second dynamics; reported throughputs read as
// paper-values/scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvaccel/internal/harness"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment: all, fig2, fig4, fig11, fig12, fig13, tablev, tablevi, recovery, fig14")
		scale    = flag.Int("scale", 10, "device/CPU scale divisor (1 = the paper's real board)")
		duration = flag.Duration("duration", 0, "workload duration (default 600s/scale)")
		keyspace = flag.Int("keyspace", 100_000, "random key domain size")
		value    = flag.Int("value", 4096, "value size in bytes (Table IV: 4KiB)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
	)
	flag.Parse()

	p := harness.DefaultParams()
	p.Scale = *scale
	p.KeySpace = *keyspace
	p.ValueSize = *value
	p.Seed = *seed
	if *duration > 0 {
		p.Duration = *duration
	} else {
		p.Duration = 600 * time.Second / time.Duration(max(1, *scale))
	}

	w := os.Stdout
	fmt.Fprintf(w, "# KVACCEL experiment harness: scale=%d duration=%v keyspace=%d value=%dB\n\n",
		p.Scale, p.Duration, p.KeySpace, p.ValueSize)

	switch strings.ToLower(*run) {
	case "all":
		p.RunAll(w)
	case "fig2", "fig3", "fig2_3":
		p.Fig2_3(w)
	case "fig4", "fig5", "fig4_5":
		p.Fig4_5(w)
	case "fig11":
		p.Fig11(w)
	case "fig12":
		p.Fig12(w)
	case "fig13":
		p.Fig13(w)
	case "tablev":
		p.TableV(w)
	case "tablevi":
		p.TableVI(w)
	case "recovery":
		p.Recovery(w)
	case "fig14":
		p.Fig14(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
