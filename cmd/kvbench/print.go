package main

import (
	"fmt"

	"kvaccel/internal/lsm"
)

// printEngineSummary prints the engine-counter block shared by the
// single-engine and sharded front-ends — stall totals, compaction
// counters, group-commit shape, and value-log activity — so a new line
// (like vlog) shows up in both, in the same format, from one place.
func printEngineSummary(m lsm.Stats, failover int64) {
	fmt.Printf("stalls      : %d events (%v total), %d slowdowns\n",
		m.TotalStalls(), m.StallTime, m.Slowdowns)
	fmt.Printf("engine      : flushes=%d compactions=%d write-amp=%.2f\n",
		m.Flushes, m.Compactions, m.WriteAmplification())
	if m.GroupCommits > 0 {
		fmt.Printf("groups      : %d commits, mean size %.2f, %.3f WAL appends/record, failover=%d\n",
			m.GroupCommits, m.MeanGroupSize(), m.WALAppendsPerRecord(), failover)
	}
	if m.VLogSegments > 0 || m.VLogBytes > 0 {
		fmt.Printf("vlog        : segments=%d, %.1f MB written, gc-rewrites=%d, discard=%.1f MB, punched=%.1f MB\n",
			m.VLogSegments, float64(m.VLogBytes)/1e6, m.VLogGCRewrites,
			float64(m.VLogDiscardBytes)/1e6, float64(m.VLogPunchedBytes)/1e6)
	}
}
