package main

import (
	"fmt"

	"kvaccel/internal/core"
	"kvaccel/internal/lsm"
)

// printEngineSummary prints the engine-counter block shared by the
// single-engine and sharded front-ends — stall totals, compaction
// counters, group-commit shape, and value-log activity — so a new line
// (like vlog) shows up in both, in the same format, from one place.
func printEngineSummary(m lsm.Stats, failover int64) {
	fmt.Printf("stalls      : %d events (%v total), %d slowdowns\n",
		m.TotalStalls(), m.StallTime, m.Slowdowns)
	fmt.Printf("engine      : flushes=%d compactions=%d write-amp=%.2f\n",
		m.Flushes, m.Compactions, m.WriteAmplification())
	if m.GroupCommits > 0 {
		fmt.Printf("groups      : %d commits, mean size %.2f, %.3f WAL appends/record, failover=%d\n",
			m.GroupCommits, m.MeanGroupSize(), m.WALAppendsPerRecord(), failover)
	}
	if m.VLogSegments > 0 || m.VLogBytes > 0 {
		fmt.Printf("vlog        : segments=%d, %.1f MB written, gc-rewrites=%d, discard=%.1f MB, punched=%.1f MB\n",
			m.VLogSegments, float64(m.VLogBytes)/1e6, m.VLogGCRewrites,
			float64(m.VLogDiscardBytes)/1e6, float64(m.VLogPunchedBytes)/1e6)
	}
	if m.Gets > 0 {
		fmt.Printf("reads-by    : memtable=%d imm=%d sst=%d miss=%d (of %d gets)\n",
			m.ReadsMemtable, m.ReadsImmutable, m.ReadsSST(), m.ReadMisses, m.Gets)
	}
	if m.BloomConsults > 0 {
		fmt.Printf("bloom       : consults=%d negatives=%d false-pos=%d\n",
			m.BloomConsults, m.BloomNegatives, m.BloomFalsePositives)
	}
	if m.BlockCacheHits+m.BlockCacheMisses > 0 {
		fmt.Printf("block-cache : %.1f%% hit (%d/%d), evictions=%d\n",
			m.BlockCacheHitRate()*100, m.BlockCacheHits,
			m.BlockCacheHits+m.BlockCacheMisses, m.BlockCacheEvictions)
	}
	if m.VLogReadCacheHits+m.VLogReadCacheMisses > 0 || m.VLogDerefs > 0 {
		fmt.Printf("vlog-reads  : derefs=%d, read-cache hits=%d misses=%d\n",
			m.VLogDerefs, m.VLogReadCacheHits, m.VLogReadCacheMisses)
	}
}

// printReadAttribution prints the KVACCEL controller's read-side view —
// the front-cache counters and the per-source attribution (front cache /
// Dev-LSM / Main-LSM), shared by the single-engine and sharded
// front-ends. A zero-valued Stats (baselines) prints nothing.
func printReadAttribution(kv core.Stats) {
	if kv.FrontCacheHits+kv.FrontCacheMisses > 0 {
		fmt.Printf("front-cache : %.1f%% hit (%d/%d), fills=%d rejected=%d invalidations=%d evictions=%d entries=%d\n",
			kv.FrontCacheHitRate()*100, kv.FrontCacheHits,
			kv.FrontCacheHits+kv.FrontCacheMisses, kv.FrontCacheFills,
			kv.FrontCacheRejected, kv.FrontCacheInvalidations,
			kv.FrontCacheEvictions, kv.FrontCacheEntries)
		if kv.FrontCacheNegHits > 0 || kv.FrontCacheNegFills > 0 {
			fmt.Printf("front-neg   : %d absent-key hits (neg-fills=%d)\n",
				kv.FrontCacheNegHits, kv.FrontCacheNegFills)
		}
	}
	if kv.Gets > 0 {
		fmt.Printf("read-src    : front-cache=%d dev-lsm=%d main-lsm=%d (of %d gets)\n",
			kv.FrontCacheHits, kv.DevServed, kv.MainGets, kv.Gets)
	}
}
