// Command kvbench is the repo's db_bench: it runs a Table IV workload
// against one engine (rocksdb, adoc, kvaccel, or kvaccel-sharded) on a
// fresh simulated testbed and prints db_bench-style summary lines plus
// optional per-second series.
//
// Examples:
//
//	kvbench -engine rocksdb -workload fillrandom -threads 1 -slowdown=false
//	kvbench -engine kvaccel -workload readwhilewriting -readfraction 0.2 -rollback eager
//	kvbench -engine adoc -workload seekrandom
//	kvbench -engine kvaccel-sharded -shards 4 -workload fillrandom
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvaccel/internal/harness"
)

func main() {
	var (
		engine   = flag.String("engine", "kvaccel", "engine: rocksdb, adoc, kvaccel, kvaccel-sharded")
		wl       = flag.String("workload", "fillrandom", "workload: fillrandom, readwhilewriting, seekrandom")
		threads  = flag.Int("threads", 1, "compaction threads")
		slowdown = flag.Bool("slowdown", true, "enable the RocksDB slowdown mechanism (rocksdb/adoc)")
		rollback = flag.String("rollback", "lazy", "kvaccel rollback scheme: disabled, lazy, eager")
		readFrac = flag.Float64("readfraction", 0.1, "read share for readwhilewriting")
		scale    = flag.Int("scale", 10, "device/CPU scale divisor")
		duration = flag.Duration("duration", 30*time.Second, "virtual run duration")
		keyspace = flag.Int("keyspace", 300_000, "key domain size")
		value    = flag.Int("value", 4096, "value size in bytes")
		series   = flag.Bool("series", false, "print per-second throughput TSV")
		shards   = flag.Int("shards", 1, "shard count for kvaccel-sharded")
		writers  = flag.Int("writers", 0, "writer threads for kvaccel-sharded (default: one per shard)")
		qd       = flag.Int("qd", 0, "NVMe submission-queue depth per queue pair (0 = device default, 32)")
		ioqueues = flag.Int("ioqueues", 0, "block-interface I/O queue pairs to stripe over (0 = default, 1)")
		qdSweep  = flag.String("qdsweep", "", "comma-separated queue depths to sweep, e.g. 1,2,4,8,32 (overrides -qd)")
		queues   = flag.Bool("queues", true, "print per-queue NVMe depth/latency stats")
		faultSee = flag.Int64("faults-seed", 0, "seed a deterministic device fault plan (0 = no injection)")
		cuts     = flag.Int("power-cuts", 0, "run the crash-recovery torture instead of a bench: cut device power N times, recover, verify the oracle")
	)
	flag.Parse()

	if *cuts > 0 {
		runTorture(*faultSee, *cuts)
		return
	}

	rb, ok := parseRollback(*rollback)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown rollback scheme %q\n", *rollback)
		os.Exit(2)
	}

	if strings.ToLower(*engine) == "kvaccel-sharded" {
		if *faultSee != 0 {
			fmt.Fprintln(os.Stderr, "-faults-seed is not supported for kvaccel-sharded")
			os.Exit(2)
		}
		runSharded(shardedRunParams{
			shards:   *shards,
			writers:  *writers,
			threads:  *threads,
			rollback: rb,
			workload: strings.ToLower(*wl),
			readFrac: *readFrac,
			scale:    *scale,
			duration: *duration,
			keyspace: *keyspace,
			value:    *value,
			series:   *series,
			qd:       *qd,
			ioqueues: *ioqueues,
			queues:   *queues,
		})
		return
	}

	p := harness.DefaultParams()
	p.Scale = *scale
	p.Duration = *duration
	p.KeySpace = *keyspace
	p.ValueSize = *value
	p.QueueDepth = *qd
	p.IOQueues = *ioqueues
	p.FaultsSeed = *faultSee

	spec := harness.EngineSpec{Threads: *threads, Slowdown: *slowdown}
	switch strings.ToLower(*engine) {
	case "rocksdb":
		spec.Kind = harness.KindRocksDB
	case "adoc":
		spec.Kind = harness.KindADOC
	case "kvaccel":
		spec.Kind = harness.KindKVAccel
		spec.Rollback = rb
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}

	var kind harness.WorkloadKind
	switch strings.ToLower(*wl) {
	case "fillrandom":
		kind = harness.WorkloadA
	case "readwhilewriting":
		if *readFrac >= 0.15 {
			kind = harness.WorkloadC
		} else {
			kind = harness.WorkloadB
		}
	case "seekrandom":
		kind = harness.WorkloadD
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	if *qdSweep != "" {
		runQDSweep(p, spec, kind, *qdSweep)
		return
	}

	fmt.Printf("kvbench: %s, %s, scale=%d duration=%v keyspace=%d value=%dB\n",
		spec.Name(), kind, p.Scale, p.Duration, p.KeySpace, p.ValueSize)
	res := p.Run(spec, kind)

	fmt.Printf("\nwrites      : %d ops, %.2f Kops/s, %.1f MB/s\n", res.Rec.Writes(), res.WriteKops(), res.WriteMBps())
	fmt.Printf("write lat   : %s\n", res.Rec.WriteLatency)
	if res.Rec.Reads() > 0 {
		fmt.Printf("reads       : %d ops, %.2f Kops/s\n", res.Rec.Reads(), res.ReadKops())
		fmt.Printf("read lat    : %s\n", res.Rec.ReadLatency)
	}
	s := res.MainStats
	fmt.Printf("cpu         : %.1f%% avg  efficiency=%.3f MB/s per cpu%%\n", res.CPUAvg, res.Efficiency())
	fmt.Printf("stalls      : %d events (%v total), %d slowdowns\n", s.TotalStalls(), s.StallTime, s.Slowdowns)
	fmt.Printf("engine      : flushes=%d compactions=%d write-amp=%.2f\n", s.Flushes, s.Compactions, s.WriteAmplification())
	fmt.Printf("tree        : %s\n", res.Levels)
	if res.Redirects > 0 || res.Rollbacks > 0 {
		fmt.Printf("kvaccel     : redirected=%d rollbacks=%d\n", res.Redirects, res.Rollbacks)
	}
	if *faultSee != 0 {
		fmt.Printf("faults      : injected=%d retried=%d failed=%d (dev-errors=%d)\n",
			res.Injected, res.DevRetries, res.DevFailed, res.DevErrors)
	}
	if *queues {
		for _, q := range res.Queues {
			if q.Submitted == 0 {
				continue
			}
			fmt.Printf("queue       : %s\n", q)
		}
	}
	if *series {
		fmt.Println()
		fmt.Print(res.Rec.WriteSeries.TSV())
		if res.Rec.Reads() > 0 {
			fmt.Print(res.Rec.ReadSeries.TSV())
		}
		fmt.Print(res.PCIeSeries.TSV())
		fmt.Print(res.PCIeH2D.TSV())
		fmt.Print(res.PCIeD2H.TSV())
	}
}

// runTorture runs the §9 crash-recovery torture from the CLI: fillrandom
// with rollback active, n seeded power cuts, reattach + Recover after
// each, and the host-side durability oracle. Exits non-zero on any
// oracle violation.
func runTorture(seed int64, n int) {
	if seed == 0 {
		seed = 1
	}
	p := harness.DefaultTortureParams(seed)
	p.Cuts = n
	p.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	fmt.Printf("kvbench: crash-recovery torture, seed=%d power-cuts=%d\n", seed, n)
	rep := harness.RunTorture(p)
	fmt.Printf("\nphases      : %d (%d cuts fired)\n", rep.Phases, rep.CutsFired)
	fmt.Printf("writes      : %d acked, %d redirected, %d flush barriers\n", rep.Acked, rep.Redirected, rep.Barriers)
	fmt.Printf("recovery    : %d pairs replayed\n", rep.Recovered)
	fmt.Printf("faults      : injected=%d retried=%d failed=%d (dev-errors=%d)\n",
		rep.Injected, rep.DevRetries, rep.DevFailed, rep.DevErrors)
	if len(rep.Violations) > 0 {
		fmt.Printf("oracle      : %d VIOLATIONS\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("oracle      : all checks passed")
}

// runQDSweep reruns the same workload once per requested queue depth and
// prints one summary row each — the knob the NVMe layer exists for.
func runQDSweep(p harness.Params, spec harness.EngineSpec, kind harness.WorkloadKind, list string) {
	fmt.Printf("kvbench: %s, %s, scale=%d duration=%v — queue-depth sweep\n",
		spec.Name(), kind, p.Scale, p.Duration)
	fmt.Printf("%6s %12s %10s %14s %14s\n", "qd", "writes", "Kops/s", "write-p99", "stall-time")
	for _, field := range strings.Split(list, ",") {
		var depth int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &depth); err != nil || depth < 1 {
			fmt.Fprintf(os.Stderr, "bad queue depth %q\n", field)
			os.Exit(2)
		}
		q := p
		q.QueueDepth = depth
		res := q.Run(spec, kind)
		fmt.Printf("%6d %12d %10.2f %14v %14v\n",
			depth, res.Rec.Writes(), res.WriteKops(),
			res.Rec.WriteLatency.Quantile(0.99), res.MainStats.StallTime)
	}
}
