// Command kvbench is the repo's db_bench: it runs a Table IV workload
// against one engine (rocksdb, adoc, kvaccel, or kvaccel-sharded) on a
// fresh simulated testbed and prints db_bench-style summary lines plus
// optional per-second series.
//
// Examples:
//
//	kvbench -engine rocksdb -workload fillrandom -threads 1 -slowdown=false
//	kvbench -engine kvaccel -workload readwhilewriting -readfraction 0.2 -rollback eager
//	kvbench -engine adoc -workload seekrandom
//	kvbench -engine kvaccel-sharded -shards 4 -workload fillrandom
//	kvbench -engine kvaccel -writers 8 -seed 7 -json out.json
//	kvbench -engine kvaccel -writers-sweep 1,8
//	kvbench -engine rocksdb -slowdown=false -trace out.json -trace-summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kvaccel/internal/harness"
	"kvaccel/internal/trace"
	"kvaccel/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		engine    = flag.String("engine", "kvaccel", "engine: rocksdb, adoc, kvaccel, kvaccel-sharded")
		wl        = flag.String("workload", "fillrandom", "workload: fillrandom, readwhilewriting, seekrandom, ycsb-a..ycsb-f, mixed")
		threads   = flag.Int("threads", 1, "compaction threads")
		slowdown  = flag.Bool("slowdown", true, "enable the RocksDB slowdown mechanism (rocksdb/adoc)")
		rollback  = flag.String("rollback", "lazy", "kvaccel rollback scheme: disabled, lazy, eager")
		readFrac  = flag.Float64("readfraction", 0.1, "read share for readwhilewriting")
		scale     = flag.Int("scale", 10, "device/CPU scale divisor")
		duration  = flag.Duration("duration", 30*time.Second, "virtual run duration")
		keyspace  = flag.Int("keyspace", 300_000, "key domain size")
		value     = flag.Int("value", 4096, "value size in bytes")
		valSize   = flag.Int("value-size", 0, "value size in bytes (db_bench spelling; overrides -value when set)")
		vthresh   = flag.Int("value-threshold", 1024, "separate values >= this many bytes into the value log (WiscKey); 0 keeps values inline")
		noVLog    = flag.Bool("no-vlog", false, "disable value separation (the vlog A/B baseline; same as -value-threshold 0)")
		series    = flag.Bool("series", false, "print per-second throughput TSV")
		shards    = flag.Int("shards", 1, "shard count for kvaccel-sharded")
		writers   = flag.Int("writers", 0, "concurrent fillrandom writer threads (kvaccel-sharded default: one per shard)")
		seed      = flag.Int64("seed", 1, "workload RNG seed (writer i uses seed+i*101)")
		noGroup   = flag.Bool("no-group-commit", false, "disable the group-commit write pipeline and stall failover (A/B baseline)")
		lingerUS  = flag.Int64("linger-us", 30, "group leader adaptive linger window in unscaled virtual microseconds (multiplied by -scale; 0 disables)")
		noPipeWAL = flag.Bool("no-pipelined-wal", false, "hold the group-commit critical section across the WAL append (pipelined-WAL A/B baseline)")
		wSweep    = flag.String("writers-sweep", "", "comma-separated writer counts, e.g. 1,8: rerun fillrandom grouped AND with -no-group-commit per count (overrides single run)")
		qd        = flag.Int("qd", 0, "NVMe submission-queue depth per queue pair (0 = device default, 32)")
		ioqueues  = flag.Int("ioqueues", 0, "block-interface I/O queue pairs to stripe over (0 = default, 1)")
		qdSweep   = flag.String("qdsweep", "", "comma-separated queue depths to sweep, e.g. 1,2,4,8,32 (overrides -qd)")
		queues    = flag.Bool("queues", true, "print per-queue NVMe depth/latency stats")
		faultSee  = flag.Int64("faults-seed", 0, "seed a deterministic device fault plan (0 = no injection)")
		cuts      = flag.Int("power-cuts", 0, "run the crash-recovery torture instead of a bench: cut device power N times, recover, verify the oracle")
		readPct   = flag.Float64("read-pct", 0, "read fraction override for mixed workloads (0 = preset default)")
		zipfT     = flag.Float64("zipf-theta", 0, "zipfian skew override for mixed workloads (0 = YCSB default 0.99)")
		frontMB   = flag.Int("front-cache-mb", 32, "hot-key front cache budget in MB (kvaccel engines; default-on for mixed workloads)")
		noFront   = flag.Bool("no-front-cache", false, "disable the hot-key front cache")
		frontNeg  = flag.Bool("front-cache-negative", false, "also cache confirmed-missing keys in the front cache (read-miss accelerator)")
		frontDoor = flag.Bool("front-doorkeeper", false, "second-chance admission on the front cache: refuse one-touch keys their first fill (uniform-traffic churn guard)")
		noBlock   = flag.Bool("no-block-cache", false, "disable the Main-LSM block cache and vlog read cache (cold-cache baseline)")
		cacheAB   = flag.String("cache-ab", "", "run the mixed workload twice (caches on, then off) and write the paired A/B record to this JSON file")
		offload   = flag.Bool("offload-compaction", false, "offload eligible L0→L1 compactions to the SSD controller under stall pressure (kvaccel engines)")
		offloadAB = flag.String("offload-ab", "", "run stall-heavy fillrandom twice (offload off, then on) and write the paired A/B record to this JSON file")
		servePath = flag.String("serve", "", "run the serving-tier A/B (batched vs per-connection dispatch, then open-loop overload) and write the paired record to this JSON file")
		srvClis   = flag.Int("serve-clients", 1024, "serving A/B: concurrent RPC clients")
		srvTens   = flag.Int("serve-tenants", 4, "serving A/B: tenant count for admission fairness accounting")
		srvDur    = flag.Duration("serve-duration", 2*time.Second, "serving A/B: per-arm virtual measurement window")
		srvLinger = flag.Int64("serve-linger-us", 100, "serving A/B: cross-connection batch linger ceiling in virtual microseconds")
		srvOver   = flag.Float64("serve-overload", 2.0, "serving A/B: open-loop offered load as a multiple of measured batched capacity")
		srvAdmit  = flag.Float64("serve-admit", 0.95, "serving A/B: admission-gate budget as a fraction of measured batched capacity")

		tracePath  = flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) of the run's virtual timeline to this file")
		traceSum   = flag.Bool("trace-summary", false, "print per-phase virtual-time attribution and the stall-window report")
		traceDepth = flag.Int("trace-depth", 1<<20, "trace ring capacity in events (oldest overwritten)")
		jsonPath   = flag.String("json", "", "write the headline RunResult as machine-readable JSON to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself (host real time, not virtual time) to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *valSize > 0 {
		*value = *valSize
	}
	if *noVLog {
		*vthresh = 0
	}
	frontSet := false
	flagSet := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		flagSet[f.Name] = true
		if f.Name == "front-cache-mb" {
			frontSet = true
		}
	})
	// The serving A/B has its own sensible defaults where they differ
	// from the single-engine bench defaults.
	if *servePath != "" {
		if !flagSet["shards"] {
			*shards = 4
		}
		if !flagSet["value"] && !flagSet["value-size"] {
			*value = 128
		}
		if !flagSet["keyspace"] {
			*keyspace = 100_000
		}
		if !flagSet["scale"] {
			*scale = 1
		}
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	if *cuts > 0 {
		return runTorture(*faultSee, *cuts, *tracePath)
	}

	if *servePath != "" {
		return runServe(serveRunParams{
			clients:        *srvClis,
			tenants:        *srvTens,
			shards:         *shards,
			scale:          *scale,
			duration:       *srvDur,
			keyspace:       *keyspace,
			value:          *value,
			seed:           *seed,
			lingerUS:       *srvLinger,
			preload:        20_000,
			overloadFactor: *srvOver,
			admitFraction:  *srvAdmit,
		}, *servePath)
	}

	rb, ok := parseRollback(*rollback)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown rollback scheme %q\n", *rollback)
		return 2
	}

	if strings.ToLower(*engine) == "kvaccel-sharded" {
		if *faultSee != 0 {
			fmt.Fprintln(os.Stderr, "-faults-seed is not supported for kvaccel-sharded")
			return 2
		}
		if *tracePath != "" || *traceSum || *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "-trace/-trace-summary/-json are not supported for kvaccel-sharded")
			return 2
		}
		runSharded(shardedRunParams{
			shards:   *shards,
			writers:  *writers,
			threads:  *threads,
			rollback: rb,
			workload: strings.ToLower(*wl),
			readFrac: *readFrac,
			scale:    *scale,
			duration: *duration,
			keyspace: *keyspace,
			value:    *value,
			vthresh:  *vthresh,
			seed:     *seed,
			noGroup:  *noGroup,
			series:   *series,
			qd:       *qd,
			ioqueues: *ioqueues,
			queues:   *queues,
			frontCacheBytes: func() int64 {
				if *noFront || !frontSet {
					return 0
				}
				return int64(*frontMB) << 20
			}(),
			frontCacheNegative: *frontNeg,
		})
		return 0
	}

	p := harness.DefaultParams()
	p.Scale = *scale
	p.Duration = *duration
	p.KeySpace = *keyspace
	p.ValueSize = *value
	p.QueueDepth = *qd
	p.IOQueues = *ioqueues
	p.FaultsSeed = *faultSee
	p.Seed = *seed
	p.Writers = *writers
	p.DisableGroupCommit = *noGroup
	p.LingerMicros = *lingerUS
	p.NoPipelinedWAL = *noPipeWAL
	p.ValueThreshold = *vthresh
	p.ReadPct = *readPct
	p.ZipfTheta = *zipfT
	p.DisableBlockCache = *noBlock
	if *tracePath != "" || *traceSum {
		p.Trace = trace.New(*traceDepth)
	}

	spec := harness.EngineSpec{Threads: *threads, Slowdown: *slowdown}
	switch strings.ToLower(*engine) {
	case "rocksdb":
		spec.Kind = harness.KindRocksDB
	case "adoc":
		spec.Kind = harness.KindADOC
	case "kvaccel":
		spec.Kind = harness.KindKVAccel
		spec.Rollback = rb
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		return 2
	}

	var kind harness.WorkloadKind
	switch strings.ToLower(*wl) {
	case "fillrandom":
		kind = harness.WorkloadA
	case "readwhilewriting":
		if *readFrac >= 0.15 {
			kind = harness.WorkloadC
		} else {
			kind = harness.WorkloadB
		}
	case "seekrandom":
		kind = harness.WorkloadD
	case "mixed":
		kind = harness.WorkloadMixed
	default:
		name := strings.ToLower(*wl)
		if _, ok := workload.Mix(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			return 2
		}
		kind = harness.WorkloadMixed
		p.Mix = name
	}

	// The front cache is the mixed-workload read accelerator: default-on
	// there (kvaccel engines only), opt-in elsewhere via -front-cache-mb.
	if !*noFront && spec.Kind == harness.KindKVAccel &&
		(kind == harness.WorkloadMixed || frontSet) {
		p.FrontCacheBytes = int64(*frontMB) << 20
	}
	p.FrontCacheNegative = *frontNeg
	p.FrontCacheDoorkeeper = *frontDoor
	p.OffloadCompaction = *offload

	if *cacheAB != "" {
		return runCacheAB(p, spec, int64(*frontMB)<<20, *cacheAB)
	}
	if *offloadAB != "" {
		return runOffloadAB(p, spec, *offloadAB)
	}
	if *wSweep != "" {
		return runWritersSweep(p, spec, *wSweep, *jsonPath)
	}
	if *qdSweep != "" {
		runQDSweep(p, spec, kind, *qdSweep)
		return 0
	}

	wlName := kind.String()
	if kind == harness.WorkloadMixed {
		mix := p.ResolveMix()
		wlName = fmt.Sprintf("Mixed(%s %s theta=%.2f)", mix.Name, mix.Dist, mix.EffectiveTheta())
	}
	fmt.Printf("kvbench: %s, %s, scale=%d duration=%v keyspace=%d value=%dB writers=%d seed=%d\n",
		spec.Name(), wlName, p.Scale, p.Duration, p.KeySpace, p.ValueSize, max(p.Writers, 1), p.Seed)
	res := p.Run(spec, kind)

	fmt.Printf("\nwrites      : %d ops, %.2f Kops/s, %.1f MB/s\n", res.Rec.Writes(), res.WriteKops(), res.WriteMBps())
	fmt.Printf("write lat   : %s\n", res.Rec.WriteLatency)
	if res.Rec.Reads() > 0 {
		fmt.Printf("reads       : %d ops, %.2f Kops/s\n", res.Rec.Reads(), res.ReadKops())
		fmt.Printf("read lat    : %s\n", res.Rec.ReadLatency)
	}
	if res.Rec.Scans() > 0 {
		fmt.Printf("scans       : %d ops, %.2f Kops/s\n", res.Rec.Scans(), res.ScanKops())
		fmt.Printf("scan lat    : %s\n", res.Rec.ScanLatency)
	}
	s := res.MainStats
	fmt.Printf("cpu         : %.1f%% avg  efficiency=%.3f MB/s per cpu%%\n", res.CPUAvg, res.Efficiency())
	printEngineSummary(s, res.WouldStallRedirects)
	printReadAttribution(res.KVStats)
	fmt.Printf("tree        : %s\n", res.Levels)
	if res.Redirects > 0 || res.Rollbacks > 0 {
		fmt.Printf("kvaccel     : redirected=%d rollbacks=%d\n", res.Redirects, res.Rollbacks)
	}
	if *faultSee != 0 {
		fmt.Printf("faults      : injected=%d retried=%d failed=%d (dev-errors=%d)\n",
			res.Injected, res.DevRetries, res.DevFailed, res.DevErrors)
	}
	if *queues {
		for _, q := range res.Queues {
			if q.Submitted == 0 {
				continue
			}
			fmt.Printf("queue       : %s\n", q)
		}
	}
	if *traceSum && res.TraceSummary != nil {
		fmt.Printf("\n--- virtual-time attribution (%d events, %d dropped) ---\n", p.Trace.Len(), p.Trace.Dropped())
		fmt.Print(res.TraceSummary.Table())
		fmt.Println()
		fmt.Print(res.TraceStalls.String())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := p.Trace.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			f.Close()
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("trace       : %d events -> %s (load in chrome://tracing or ui.perfetto.dev)\n", p.Trace.Len(), *tracePath)
	}
	if *jsonPath != "" {
		if err := writeJSONResult(*jsonPath, p, spec, kind, res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("json        : headline result -> %s\n", *jsonPath)
	}
	if *series {
		fmt.Println()
		fmt.Print(res.Rec.WriteSeries.TSV())
		if res.Rec.Reads() > 0 {
			fmt.Print(res.Rec.ReadSeries.TSV())
		}
		fmt.Print(res.PCIeSeries.TSV())
		fmt.Print(res.PCIeH2D.TSV())
		fmt.Print(res.PCIeD2H.TSV())
	}
	return 0
}

// startProfiles arms the requested pprof outputs. These measure the
// simulator's own host cost — real CPU seconds and heap bytes spent
// simulating, not virtual time (that is what -trace shows).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}, nil
}

// benchJSON is the machine-readable headline of one run — the record
// appended to the BENCH_*.json perf trajectory.
type benchJSON struct {
	Engine      string  `json:"engine"`
	Workload    string  `json:"workload"`
	Scale       int     `json:"scale"`
	Seed        int64   `json:"seed"`
	Writers     int     `json:"writers"`
	GroupCommit bool    `json:"group_commit"`
	DurationS   float64 `json:"duration_s"` // virtual seconds measured

	Mix string `json:"mix,omitempty"` // resolved mixed-workload preset

	Writes     int64   `json:"writes"`
	WriteKops  float64 `json:"write_kops"`
	WriteMBps  float64 `json:"write_mbps"`
	Reads      int64   `json:"reads,omitempty"`
	ReadKops   float64 `json:"read_kops,omitempty"`
	Scans      int64   `json:"scans,omitempty"`
	ScanKops   float64 `json:"scan_kops,omitempty"`
	WriteP50US float64 `json:"write_p50_us"`
	WriteP99US float64 `json:"write_p99_us"`
	ReadP50US  float64 `json:"read_p50_us,omitempty"`
	ReadP99US  float64 `json:"read_p99_us,omitempty"`
	ScanP50US  float64 `json:"scan_p50_us,omitempty"`
	ScanP99US  float64 `json:"scan_p99_us,omitempty"`

	CPUAvgPct  float64 `json:"cpu_avg_pct"`
	Efficiency float64 `json:"efficiency_mbps_per_cpu_pct"`

	Stalls      int64   `json:"stalls"`
	StallTimeS  float64 `json:"stall_time_s"`
	Slowdowns   int64   `json:"slowdowns"`
	Flushes     int64   `json:"flushes"`
	Compactions int64   `json:"compactions"`
	WriteAmp    float64 `json:"write_amp"`
	Redirected  int64   `json:"redirected,omitempty"`
	Rollbacks   int64   `json:"rollbacks,omitempty"`

	GroupCommits        int64   `json:"group_commits,omitempty"`
	MeanGroupSize       float64 `json:"mean_group_size,omitempty"`
	WALAppendsPerRecord float64 `json:"wal_appends_per_record,omitempty"`
	WouldStallRedirects int64   `json:"would_stall_redirects,omitempty"`
	GroupLingerWaits    int64   `json:"group_linger_waits,omitempty"`
	GroupLingerMicros   int64   `json:"group_linger_micros,omitempty"`
	PipelinedAppends    int64   `json:"pipelined_appends,omitempty"`

	ValueLog *vlogJSON `json:"value_log,omitempty"`

	// FrontCache, BlockCache, and Attribution are the read-pipeline
	// blocks: hot-key front cache counters, Main-LSM block cache
	// counters, and the controller's per-source read attribution.
	FrontCache  *frontCacheJSON  `json:"front_cache,omitempty"`
	BlockCache  *blockCacheJSON  `json:"block_cache,omitempty"`
	Attribution *attributionJSON `json:"read_attribution,omitempty"`

	PCIeAvgMBps float64 `json:"pcie_avg_mbps"`

	Queues []queueJSON `json:"queues,omitempty"`

	TracePhases []phaseJSON `json:"trace_phases,omitempty"`
}

// vlogJSON is the value-separation block of benchJSON, present only when
// the run had a value log.
type vlogJSON struct {
	Segments     int64 `json:"segments"`
	GCRewrites   int64 `json:"gc_rewrites"`
	DiscardBytes int64 `json:"discard_bytes"`
	PunchedBytes int64 `json:"punched_bytes"`
}

// frontCacheJSON is the hot-key front cache block, present when the
// cache saw any traffic.
type frontCacheJSON struct {
	Hits          int64   `json:"hits"`
	NegHits       int64   `json:"neg_hits,omitempty"` // subset of Hits answered by negative entries
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Fills         int64   `json:"fills"`
	NegFills      int64   `json:"neg_fills,omitempty"`
	Rejected      int64   `json:"rejected"`
	Invalidations int64   `json:"invalidations"`
	Evictions     int64   `json:"evictions"`
	Entries       int64   `json:"entries"`
	UsedBytes     int64   `json:"used_bytes"`
}

// blockCacheJSON is the Main-LSM SST block cache block.
type blockCacheJSON struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Evictions int64   `json:"evictions"`
}

// attributionJSON is the controller's per-source read attribution;
// Sums asserts FrontCache + DevLSM + MainLSM == Gets.
type attributionJSON struct {
	FrontCache int64 `json:"front_cache"`
	DevLSM     int64 `json:"dev_lsm"`
	MainLSM    int64 `json:"main_lsm"`
	Gets       int64 `json:"gets"`
	Sums       bool  `json:"sums"`
}

// queueJSON is one NVMe queue pair. The unprefixed fields are totals;
// fg_*/bg_* split foreground admission (WAL appends, user reads) from
// background maintenance traffic (compaction, flush, offload validation)
// so device-merge I/O no longer inflates the foreground depth numbers.
type queueJSON struct {
	Name        string  `json:"name"`
	Submitted   int64   `json:"submitted"`
	MeanDepth   float64 `json:"mean_depth"`
	MeanUS      float64 `json:"mean_us"`
	P99US       float64 `json:"p99_us"`
	FgSubmitted int64   `json:"fg_submitted,omitempty"`
	FgMeanDepth float64 `json:"fg_mean_depth,omitempty"`
	FgMeanUS    float64 `json:"fg_mean_us,omitempty"`
	FgP99US     float64 `json:"fg_p99_us,omitempty"`
	BgSubmitted int64   `json:"bg_submitted,omitempty"`
	BgMeanDepth float64 `json:"bg_mean_depth,omitempty"`
	BgMeanUS    float64 `json:"bg_mean_us,omitempty"`
	BgP99US     float64 `json:"bg_p99_us,omitempty"`
}

type phaseJSON struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MaxUS   float64 `json:"max_us"`
}

func writeJSONResult(path string, p harness.Params, spec harness.EngineSpec, kind harness.WorkloadKind, res *harness.RunResult) error {
	out := makeBenchJSON(p, spec, kind, res)
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func makeBenchJSON(p harness.Params, spec harness.EngineSpec, kind harness.WorkloadKind, res *harness.RunResult) benchJSON {
	out := benchJSON{
		Engine:      spec.Name(),
		Workload:    kind.String(),
		Scale:       p.Scale,
		Seed:        p.Seed,
		Writers:     max(p.Writers, 1),
		GroupCommit: !p.DisableGroupCommit,
		DurationS:   res.Duration.Seconds(),
		Writes:      res.Rec.Writes(),
		WriteKops:   res.WriteKops(),
		WriteMBps:   res.WriteMBps(),
		Reads:       res.Rec.Reads(),
		ReadKops:    res.ReadKops(),
		WriteP50US:  float64(res.Rec.WriteLatency.Quantile(0.5)) / 1e3,
		WriteP99US:  float64(res.Rec.WriteLatency.Quantile(0.99)) / 1e3,
		CPUAvgPct:   res.CPUAvg,
		Efficiency:  res.Efficiency(),
		Stalls:      res.MainStats.TotalStalls(),
		StallTimeS:  res.MainStats.StallTime.Seconds(),
		Slowdowns:   res.MainStats.Slowdowns,
		Flushes:     res.MainStats.Flushes,
		Compactions: res.MainStats.Compactions,
		WriteAmp:    res.MainStats.WriteAmplification(),
		Redirected:  res.Redirects,
		Rollbacks:   res.Rollbacks,
		PCIeAvgMBps: res.PCIeSeries.Mean(),

		GroupCommits:        res.MainStats.GroupCommits,
		MeanGroupSize:       res.MainStats.MeanGroupSize(),
		WALAppendsPerRecord: res.MainStats.WALAppendsPerRecord(),
		WouldStallRedirects: res.WouldStallRedirects,
		GroupLingerWaits:    res.MainStats.GroupLingerWaits,
		GroupLingerMicros:   res.MainStats.GroupLingerMicros,
		PipelinedAppends:    res.MainStats.PipelinedAppends,
	}
	if kind == harness.WorkloadMixed {
		out.Mix = res.MixSpec.Name
	}
	if res.Rec.Reads() > 0 {
		out.ReadP50US = float64(res.Rec.ReadLatency.Quantile(0.5)) / 1e3
		out.ReadP99US = float64(res.Rec.ReadLatency.Quantile(0.99)) / 1e3
	}
	if res.Rec.Scans() > 0 {
		out.Scans = res.Rec.Scans()
		out.ScanKops = res.ScanKops()
		out.ScanP50US = float64(res.Rec.ScanLatency.Quantile(0.5)) / 1e3
		out.ScanP99US = float64(res.Rec.ScanLatency.Quantile(0.99)) / 1e3
	}
	kv := res.KVStats
	if kv.FrontCacheHits+kv.FrontCacheMisses > 0 {
		out.FrontCache = &frontCacheJSON{
			Hits:          kv.FrontCacheHits,
			NegHits:       kv.FrontCacheNegHits,
			Misses:        kv.FrontCacheMisses,
			HitRate:       kv.FrontCacheHitRate(),
			Fills:         kv.FrontCacheFills,
			NegFills:      kv.FrontCacheNegFills,
			Rejected:      kv.FrontCacheRejected,
			Invalidations: kv.FrontCacheInvalidations,
			Evictions:     kv.FrontCacheEvictions,
			Entries:       kv.FrontCacheEntries,
			UsedBytes:     kv.FrontCacheUsed,
		}
	}
	if m := res.MainStats; m.BlockCacheHits+m.BlockCacheMisses > 0 {
		out.BlockCache = &blockCacheJSON{
			Hits:      m.BlockCacheHits,
			Misses:    m.BlockCacheMisses,
			HitRate:   m.BlockCacheHitRate(),
			Evictions: m.BlockCacheEvictions,
		}
	}
	if kv.Gets > 0 {
		out.Attribution = &attributionJSON{
			FrontCache: kv.FrontCacheHits,
			DevLSM:     kv.DevServed,
			MainLSM:    kv.MainGets,
			Gets:       kv.Gets,
			Sums:       kv.FrontCacheHits+kv.DevServed+kv.MainGets == kv.Gets,
		}
	}
	if m := res.MainStats; m.VLogSegments > 0 || m.VLogBytes > 0 {
		out.ValueLog = &vlogJSON{
			Segments:     m.VLogSegments,
			GCRewrites:   m.VLogGCRewrites,
			DiscardBytes: m.VLogDiscardBytes,
			PunchedBytes: m.VLogPunchedBytes,
		}
	}
	for _, q := range res.Queues {
		if q.Submitted == 0 {
			continue
		}
		qj := queueJSON{
			Name:      q.Name,
			Submitted: q.Submitted,
			MeanDepth: q.MeanOutstanding,
			MeanUS:    float64(q.Latency.Mean()) / 1e3,
			P99US:     float64(q.Latency.Quantile(0.99)) / 1e3,
		}
		if q.BgSubmitted > 0 {
			qj.FgSubmitted = q.Submitted - q.BgSubmitted
			qj.FgMeanDepth = q.MeanOutstanding - q.MeanBgOutstanding
			qj.FgMeanUS = float64(q.FgLatency.Mean()) / 1e3
			qj.FgP99US = float64(q.FgLatency.Quantile(0.99)) / 1e3
			qj.BgSubmitted = q.BgSubmitted
			qj.BgMeanDepth = q.MeanBgOutstanding
			qj.BgMeanUS = float64(q.BgLatency.Mean()) / 1e3
			qj.BgP99US = float64(q.BgLatency.Quantile(0.99)) / 1e3
		}
		out.Queues = append(out.Queues, qj)
	}
	if res.TraceSummary != nil {
		for _, ps := range res.TraceSummary.Phases {
			out.TracePhases = append(out.TracePhases, phaseJSON{
				Phase:   ps.Phase.String(),
				Count:   ps.Count,
				TotalMS: float64(ps.Total) / 1e6,
				MaxUS:   float64(ps.Max) / 1e3,
			})
		}
	}
	return out
}

// runTorture runs the §9 crash-recovery torture from the CLI: fillrandom
// with rollback active, n seeded power cuts, reattach + Recover after
// each, and the host-side durability oracle. Exits non-zero on any
// oracle violation.
func runTorture(seed int64, n int, tracePath string) int {
	if seed == 0 {
		seed = 1
	}
	p := harness.DefaultTortureParams(seed)
	p.Cuts = n
	p.TracePath = tracePath
	p.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	fmt.Printf("kvbench: crash-recovery torture, seed=%d power-cuts=%d\n", seed, n)
	rep := harness.RunTorture(p)
	fmt.Printf("\nphases      : %d (%d cuts fired)\n", rep.Phases, rep.CutsFired)
	fmt.Printf("writes      : %d acked, %d redirected, %d flush barriers\n", rep.Acked, rep.Redirected, rep.Barriers)
	fmt.Printf("recovery    : %d pairs replayed\n", rep.Recovered)
	fmt.Printf("faults      : injected=%d retried=%d failed=%d (dev-errors=%d)\n",
		rep.Injected, rep.DevRetries, rep.DevFailed, rep.DevErrors)
	if len(rep.Violations) > 0 {
		fmt.Printf("oracle      : %d VIOLATIONS\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  - %s\n", v)
		}
		if rep.TraceDumped {
			fmt.Printf("trace       : violating window -> %s\n", tracePath)
		}
		return 1
	}
	fmt.Println("oracle      : all checks passed")
	return 0
}

// runCacheAB is the read-cache A/B harness: it runs the mixed workload
// twice on identical seeds — hot-key front cache and block cache on,
// then both off — and writes the paired headline records plus the read
// speedup and the attribution check to path. Exits non-zero if the
// per-source read attribution fails to sum.
func runCacheAB(p harness.Params, spec harness.EngineSpec, frontBytes int64, path string) int {
	kind := harness.WorkloadMixed
	mix := p.ResolveMix()
	fmt.Printf("kvbench: %s, Mixed(%s %s theta=%.2f), scale=%d duration=%v keyspace=%d seed=%d — cache A/B (front+block on vs off)\n",
		spec.Name(), mix.Name, mix.Dist, mix.EffectiveTheta(), p.Scale, p.Duration, p.KeySpace, p.Seed)
	fmt.Printf("%7s %10s %9s %12s %11s %11s\n",
		"caches", "reads", "Kops/s", "read-p99", "front-hit", "block-hit")
	row := func(label string, res *harness.RunResult) {
		fmt.Printf("%7s %10d %9.2f %12v %10.1f%% %10.1f%%\n",
			label, res.Rec.Reads(), res.ReadKops(),
			res.Rec.ReadLatency.Quantile(0.99),
			res.KVStats.FrontCacheHitRate()*100,
			res.MainStats.BlockCacheHitRate()*100)
	}

	on := p
	on.FrontCacheBytes = frontBytes
	on.DisableBlockCache = false
	resOn := on.Run(spec, kind)
	row("on", resOn)

	off := p
	off.FrontCacheBytes = 0
	off.DisableBlockCache = true
	resOff := off.Run(spec, kind)
	row("off", resOff)

	var speedup float64
	if resOff.ReadKops() > 0 {
		speedup = resOn.ReadKops() / resOff.ReadKops()
	}
	kv := resOn.KVStats
	attributionOK := kv.Gets > 0 && kv.FrontCacheHits+kv.DevServed+kv.MainGets == kv.Gets
	fmt.Printf("speedup     : %.2fx reads with caches on (attribution-ok=%v)\n", speedup, attributionOK)

	out := struct {
		Mix           string    `json:"mix"`
		CacheOn       benchJSON `json:"cache_on"`
		CacheOff      benchJSON `json:"cache_off"`
		ReadSpeedup   float64   `json:"read_speedup"`
		AttributionOK bool      `json:"attribution_ok"`
	}{mix.Name, makeBenchJSON(on, spec, kind, resOn), makeBenchJSON(off, spec, kind, resOff), speedup, attributionOK}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("json        : cache A/B record -> %s\n", path)
	if !attributionOK {
		fmt.Fprintln(os.Stderr, "read attribution failed to sum")
		return 1
	}
	return 0
}

// runQDSweep reruns the same workload once per requested queue depth and
// prints one summary row each — the knob the NVMe layer exists for.
func runQDSweep(p harness.Params, spec harness.EngineSpec, kind harness.WorkloadKind, list string) {
	fmt.Printf("kvbench: %s, %s, scale=%d duration=%v — queue-depth sweep\n",
		spec.Name(), kind, p.Scale, p.Duration)
	fmt.Printf("%6s %12s %10s %14s %14s\n", "qd", "writes", "Kops/s", "write-p99", "stall-time")
	for _, field := range strings.Split(list, ",") {
		var depth int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &depth); err != nil || depth < 1 {
			fmt.Fprintf(os.Stderr, "bad queue depth %q\n", field)
			os.Exit(2)
		}
		q := p
		q.QueueDepth = depth
		res := q.Run(spec, kind)
		fmt.Printf("%6d %12d %10.2f %14v %14v\n",
			depth, res.Rec.Writes(), res.WriteKops(),
			res.Rec.WriteLatency.Quantile(0.99), res.MainStats.StallTime)
	}
}

// runWritersSweep is the group-commit A/B harness: for each writer count
// it runs fillrandom twice — pipeline enabled, then -no-group-commit —
// and prints one row per run plus the grouped/ungrouped speedup. With
// -json the per-run headline records are written as a JSON array.
func runWritersSweep(p harness.Params, spec harness.EngineSpec, list, jsonPath string) int {
	kind := harness.WorkloadA
	fmt.Printf("kvbench: %s, %s, scale=%d duration=%v seed=%d — writer sweep (grouped vs -no-group-commit)\n",
		spec.Name(), kind, p.Scale, p.Duration, p.Seed)
	fmt.Printf("%7s %6s %10s %9s %9s %12s %12s %9s\n",
		"writers", "group", "writes", "Kops/s", "mean-grp", "appends/rec", "stall-time", "failover")
	var records []benchJSON
	for _, field := range strings.Split(list, ",") {
		var nw int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &nw); err != nil || nw < 1 {
			fmt.Fprintf(os.Stderr, "bad writer count %q\n", field)
			return 2
		}
		var kops [2]float64
		for _, grouped := range []bool{true, false} {
			q := p
			q.Writers = nw
			q.DisableGroupCommit = !grouped
			res := q.Run(spec, kind)
			s := res.MainStats
			fmt.Printf("%7d %6v %10d %9.2f %9.2f %12.3f %12v %9d\n",
				nw, grouped, res.Rec.Writes(), res.WriteKops(),
				s.MeanGroupSize(), s.WALAppendsPerRecord(),
				s.StallTime, res.WouldStallRedirects)
			if grouped {
				kops[0] = res.WriteKops()
			} else {
				kops[1] = res.WriteKops()
			}
			records = append(records, makeBenchJSON(q, spec, kind, res))
		}
		if kops[1] > 0 {
			fmt.Printf("%7d speedup %.2fx grouped over ungrouped\n", nw, kops[0]/kops[1])
		}
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("json        : %d records -> %s\n", len(records), jsonPath)
	}
	return 0
}
