package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kvaccel/internal/harness"
	"kvaccel/internal/workload"
)

// serveRunParams shapes the serving-tier A/B driver.
type serveRunParams struct {
	clients  int
	tenants  int
	shards   int
	scale    int
	duration time.Duration
	keyspace int
	value    int
	seed     int64
	lingerUS int64
	preload  int
	// overloadFactor is the open-loop offered load as a multiple of the
	// measured batched capacity; admitFraction is the admission-gate
	// budget as a fraction of that capacity.
	overloadFactor float64
	admitFraction  float64
}

// serveJSON is one serving run's machine-readable headline.
type serveJSON struct {
	Mode      string  `json:"mode"` // batched, unbatched, overload
	OpenLoop  bool    `json:"open_loop"`
	Clients   int     `json:"clients"`
	Tenants   int     `json:"tenants"`
	Shards    int     `json:"shards"`
	Seed      int64   `json:"seed"`
	DurationS float64 `json:"duration_s"`

	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	NotFound int64 `json:"not_found"`
	Retry    int64 `json:"retry"`
	Errs     int64 `json:"errs"`
	Dropped  int64 `json:"dropped"`

	GoodputOps float64 `json:"goodput_ops"`
	ShedRate   float64 `json:"shed_rate"`

	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`

	// Mean per-request phase residency (client-observed decomposition).
	NetUS      float64 `json:"phase_net_us"`
	AcceptUS   float64 `json:"phase_accept_us"`
	LingerUS   float64 `json:"phase_linger_us"`
	EngineUS   float64 `json:"phase_engine_us"`
	ReplyUS    float64 `json:"phase_reply_us"`
	PhaseCover float64 `json:"phase_coverage"`

	Batches      int64   `json:"batches,omitempty"`
	MeanBatchOps float64 `json:"mean_batch_ops,omitempty"`
	ReadChunks   int64   `json:"read_chunks,omitempty"`
	MeanChunk    float64 `json:"mean_read_chunk,omitempty"`
	DirectOps    int64   `json:"direct_ops,omitempty"`
	ServerShed   int64   `json:"server_shed,omitempty"`

	EngineStalls    int64   `json:"engine_stalls"`
	EngineStallS    float64 `json:"engine_stall_s"`
	GroupCommits    int64   `json:"group_commits,omitempty"`
	MeanGroupSize   float64 `json:"mean_group_size,omitempty"`
	AppendsPerRec   float64 `json:"wal_appends_per_record,omitempty"`
	RedirectedPuts  int64   `json:"redirected_puts,omitempty"`
	TenantAdmits    []int64 `json:"tenant_admitted,omitempty"`
	TenantSheds     []int64 `json:"tenant_shed,omitempty"`
	ConservationOK  bool    `json:"conservation_ok"`
	AdmitRateConfig float64 `json:"admit_rate,omitempty"`
}

func makeServeJSON(mode string, p serveRunParams, sp harness.ServeParams, res *harness.ServeResult) serveJSON {
	s := res.Load
	answered := s.Answered()
	perReq := func(totalNS int64) float64 {
		if answered == 0 {
			return 0
		}
		return float64(totalNS) / float64(answered) / 1e3
	}
	out := serveJSON{
		Mode:      mode,
		OpenLoop:  sp.Load.OpenLoop,
		Clients:   res.Clients,
		Tenants:   p.tenants,
		Shards:    p.shards,
		Seed:      p.seed,
		DurationS: res.Elapsed.Seconds(),

		Sent:     s.Sent,
		OK:       s.OK,
		NotFound: s.NotFound,
		Retry:    s.Retry,
		Errs:     s.Errs,
		Dropped:  s.Dropped,

		GoodputOps: res.Goodput(),
		ShedRate:   s.ShedRate(),

		P50US:  float64(s.Latency.P50()) / 1e3,
		P99US:  float64(s.Latency.P99()) / 1e3,
		P999US: float64(s.Latency.P999()) / 1e3,

		NetUS:      perReq(s.NetNS),
		AcceptUS:   perReq(s.AcceptNS),
		LingerUS:   perReq(s.LingerNS),
		EngineUS:   perReq(s.EngineNS),
		ReplyUS:    perReq(s.ReplyNS),
		PhaseCover: s.PhaseCoverage(),

		Batches:      res.Server.Batches,
		MeanBatchOps: res.Server.MeanBatchOps(),
		ReadChunks:   res.Server.ReadChunks,
		MeanChunk:    res.Server.MeanReadChunk(),
		DirectOps:    res.Server.DirectOps,
		ServerShed:   res.Server.Shed,

		EngineStalls:   res.Engine.Main.TotalStalls(),
		EngineStallS:   res.Engine.Main.StallTime.Seconds(),
		GroupCommits:   res.Engine.Main.GroupCommits,
		MeanGroupSize:  res.Engine.Main.MeanGroupSize(),
		AppendsPerRec:  res.Engine.Main.WALAppendsPerRecord(),
		RedirectedPuts: res.Engine.KVAccel.RedirectedPuts,

		ConservationOK:  s.Sent == answered+s.Dropped,
		AdmitRateConfig: sp.Server.AdmitRate,
	}
	for _, t := range res.Server.Tenants {
		out.TenantAdmits = append(out.TenantAdmits, t.Answered)
		out.TenantSheds = append(out.TenantSheds, t.Shed)
	}
	return out
}

// serveParams builds the common harness setup for one arm.
func (p serveRunParams) harnessParams() harness.ServeParams {
	sp := harness.DefaultServeParams()
	sp.Shards = p.shards
	sp.Scale = p.scale
	sp.Preload = p.preload
	sp.Server.LingerMicros = p.lingerUS
	sp.Server.Tenants = p.tenants
	sp.Load.Clients = p.clients
	sp.Load.Tenants = p.tenants
	sp.Load.KeySpace = p.keyspace
	sp.Load.ValueSize = p.value
	sp.Load.Duration = p.duration
	sp.Load.Seed = p.seed
	return sp
}

func printServeRow(label string, j serveJSON) {
	fmt.Printf("%-9s %9d %10.0f %7.2f %9.1f %9.1f %10.1f %7.2f %6d %6.1f\n",
		label, j.Sent, j.GoodputOps, j.ShedRate, j.P99US, j.P999US,
		j.EngineUS, j.PhaseCover, j.EngineStalls, j.MeanBatchOps)
}

// runServe is the serving-tier A/B driver: batched vs per-connection
// dispatch closed-loop at full client count (the capacity comparison),
// then an open-loop overload run at a multiple of the measured batched
// capacity with the admission gate set just under it (the shed-or-stall
// test). Writes the paired records to path and exits non-zero when an
// acceptance invariant fails.
func runServe(p serveRunParams, path string) int {
	mix, _ := workload.Mix("ycsb-a")
	fmt.Printf("kvbench: serving tier A/B, %s, clients=%d tenants=%d shards=%d scale=%d duration=%v value=%dB seed=%d\n",
		mix, p.clients, p.tenants, p.shards, p.scale, p.duration, p.value, p.seed)
	fmt.Printf("%-9s %9s %10s %7s %9s %9s %10s %7s %6s %6s\n",
		"mode", "sent", "goodput", "shed", "p99-us", "p999-us", "engine-us", "cover", "stalls", "batch")

	// Arm 1: batched closed loop — the serving tier's capacity.
	spB := p.harnessParams()
	spB.Server.Batch = true
	resB := spB.RunServe()
	jB := makeServeJSON("batched", p, spB, resB)
	printServeRow("batched", jB)

	// Arm 2: per-connection dispatch closed loop — the baseline.
	spU := p.harnessParams()
	spU.Server.Batch = false
	resU := spU.RunServe()
	jU := makeServeJSON("unbatched", p, spU, resU)
	printServeRow("unbatched", jU)

	// Arm 3: open-loop overload at overloadFactor x the measured batched
	// capacity, admission gate at admitFraction of it. The tier must shed
	// with RETRY_LATER and keep the engine out of stalls while goodput
	// holds near saturation.
	capacity := resB.Goodput()
	offered := capacity * p.overloadFactor
	spO := p.harnessParams()
	spO.Server.Batch = true
	spO.Server.AdmitRate = capacity * p.admitFraction
	spO.Load.OpenLoop = true
	if offered > 0 {
		spO.Load.Interval = time.Duration(float64(p.clients) / offered * float64(time.Second))
	}
	resO := spO.RunServe()
	jO := makeServeJSON("overload", p, spO, resO)
	printServeRow("overload", jO)

	ratio := 0.0
	if g := resU.Goodput(); g > 0 {
		ratio = resB.Goodput() / g
	}
	overVsCap := 0.0
	if capacity > 0 {
		overVsCap = resO.Goodput() / (capacity * p.admitFraction)
	}
	fmt.Printf("\nbatching    : %.2fx goodput over per-connection dispatch\n", ratio)
	fmt.Printf("p999        : batched %v vs unbatched %v\n", resB.Load.Latency.P999(), resU.Load.Latency.P999())
	fmt.Printf("overload    : offered %.0f ops/s (%.1fx capacity), goodput %.0f = %.2fx admitted budget, shed %.0f%%, stalls=%d\n",
		offered, p.overloadFactor, resO.Goodput(), overVsCap, jO.ShedRate*100, jO.EngineStalls)

	type invariant struct {
		name string
		ok   bool
	}
	invariants := []invariant{
		{fmt.Sprintf("batched goodput >= 2x unbatched (got %.2fx)", ratio), ratio >= 2.0},
		{fmt.Sprintf("batched p999 < unbatched p999 (%v vs %v)", resB.Load.Latency.P999(), resU.Load.Latency.P999()),
			resB.Load.Latency.P999() < resU.Load.Latency.P999()},
		{fmt.Sprintf("phase decomposition covers >= 90%% of mean latency (batched %.3f, unbatched %.3f)", jB.PhaseCover, jU.PhaseCover),
			jB.PhaseCover >= 0.9 && jU.PhaseCover >= 0.9},
		{fmt.Sprintf("overload engine stall time zero (stalls=%d stall_s=%.3f)", jO.EngineStalls, jO.EngineStallS),
			jO.EngineStalls == 0 && jO.EngineStallS == 0},
		{fmt.Sprintf("overload goodput within 10%% of admitted budget (got %.2fx)", overVsCap),
			overVsCap >= 0.9},
		{fmt.Sprintf("overload sheds are RETRY_LATER, none dropped (retry=%d dropped=%d)", jO.Retry, jO.Dropped),
			jO.Retry > 0 && jO.Dropped == 0},
		{fmt.Sprintf("request conservation in every arm (batched=%v unbatched=%v overload=%v)",
			jB.ConservationOK, jU.ConservationOK, jO.ConservationOK),
			jB.ConservationOK && jU.ConservationOK && jO.ConservationOK},
	}

	failed := 0
	for _, inv := range invariants {
		mark := "ok"
		if !inv.ok {
			mark = "FAIL"
			failed++
		}
		fmt.Printf("invariant   : [%s] %s\n", mark, inv.name)
	}

	out := struct {
		Mix          string    `json:"mix"`
		Batched      serveJSON `json:"batched"`
		Unbatched    serveJSON `json:"unbatched"`
		Overload     serveJSON `json:"overload"`
		GoodputRatio float64   `json:"goodput_ratio"`
		InvariantsOK bool      `json:"invariants_ok"`
	}{mix.Name, jB, jU, jO, ratio, failed == 0}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("json        : serving A/B record -> %s\n", path)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d serving invariant(s) failed\n", failed)
		return 1
	}
	return 0
}
