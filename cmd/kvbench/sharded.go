package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"kvaccel"
	"kvaccel/internal/core"
	"kvaccel/internal/workload"
)

func parseRollback(s string) (core.RollbackScheme, bool) {
	switch s {
	case "disabled":
		return core.RollbackDisabled, true
	case "lazy":
		return core.RollbackLazy, true
	case "eager":
		return core.RollbackEager, true
	}
	return 0, false
}

type shardedRunParams struct {
	shards   int
	writers  int
	threads  int
	rollback core.RollbackScheme
	workload string
	readFrac float64
	scale    int
	duration time.Duration
	keyspace int
	value    int
	vthresh  int
	seed     int64
	noGroup  bool
	series   bool
	qd       int
	ioqueues int
	queues   bool
	// frontCacheBytes is the total hot-key front cache budget, split
	// evenly across shards by OpenSharded (0 = disabled).
	frontCacheBytes int64
	// frontCacheNegative also caches confirmed-missing keys.
	frontCacheNegative bool
}

// runSharded drives the ShardedDB front-end: N writer threads over N
// hash-partitioned KVACCEL shards on one shared simulated machine.
func runSharded(p shardedRunParams) {
	if p.shards < 1 {
		p.shards = 1
	}
	if p.writers < 1 {
		p.writers = p.shards // default: one writer per shard
	}

	opt := kvaccel.DefaultShardedOptions()
	opt.Shards = p.shards
	opt.Scale = p.scale
	opt.CompactionThreads = p.threads
	opt.Rollback = p.rollback
	opt.QueueDepth = p.qd
	opt.IOQueues = p.ioqueues
	opt.DisableGroupCommit = p.noGroup
	opt.ValueThreshold = p.vthresh
	opt.FrontCacheBytes = p.frontCacheBytes
	opt.FrontCacheNegative = p.frontCacheNegative
	db := kvaccel.OpenSharded(opt)
	eng := workload.ShardedEngine{DB: db}

	cfg := workload.DefaultConfig()
	cfg.KeySpace = p.keyspace
	cfg.ValueSize = p.value
	cfg.Duration = p.duration
	if p.seed != 0 {
		cfg.Seed = p.seed
	}

	fmt.Printf("kvbench: KVAccel-sharded(%d), %s, writers=%d scale=%d duration=%v keyspace=%d value=%dB\n",
		p.shards, p.workload, p.writers, opt.Scale, p.duration, p.keyspace, p.value)

	// One recorder shared by every writer: op counters are atomic and
	// the histograms lock internally, so concurrent observes are safe.
	rec := workload.NewRecorder(fmt.Sprintf("sharded-%d", p.shards))
	var remaining atomic.Int32
	remaining.Store(int32(p.writers))
	var done atomic.Bool
	var elapsed time.Duration

	// Per-second throughput sampler (paper-equivalent cadence, as in the
	// harness: virtual seconds x scale on the time axis).
	interval := time.Second / time.Duration(opt.Scale)
	db.Run("sampler", func(r *kvaccel.Runner) {
		for !done.Load() {
			r.Sleep(interval)
			rec.Sample(r.Now().Seconds()*float64(opt.Scale), interval)
		}
	})

	for w := 0; w < p.writers; w++ {
		w := w
		db.Run(fmt.Sprintf("writer-%d", w), func(r *kvaccel.Runner) {
			c := cfg
			c.Seed = cfg.Seed + int64(w)*101 // disjoint key streams per writer
			start := r.Now()
			switch p.workload {
			case "fillrandom":
				workload.FillRandom(r, eng, c, rec)
			case "readwhilewriting":
				c.ReadFraction = p.readFrac
				workload.ReadWhileWriting(r, db.Clock(), eng, c, rec)
			case "seekrandom":
				if w == 0 {
					workload.FillSequential(r, eng, c, p.keyspace)
				}
				workload.SeekRandom(r, eng, c, rec)
			default:
				fmt.Fprintf(os.Stderr, "unknown workload %q for kvaccel-sharded\n", p.workload)
				os.Exit(2)
			}
			if d := r.Now().Sub(start); d > elapsed {
				elapsed = d // longest writer defines the run
			}
			if remaining.Add(-1) == 0 {
				done.Store(true)
				db.Close()
			}
		})
	}
	db.Wait()

	st := db.Stats()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = p.duration.Seconds()
	}
	fmt.Printf("\nwrites      : %d ops, %.2f Kops/s, %.1f MB/s\n",
		rec.Writes(), float64(rec.Writes())/secs/1000,
		float64(rec.Writes())*float64(p.value)/1e6/secs)
	fmt.Printf("write lat   : %s\n", rec.WriteLatency)
	if rec.Reads() > 0 {
		fmt.Printf("reads       : %d ops, %.2f Kops/s\n", rec.Reads(), float64(rec.Reads())/secs/1000)
		fmt.Printf("read lat    : %s\n", rec.ReadLatency)
	}
	m := st.Main
	printEngineSummary(m, st.KVAccel.WouldStallRedirects)
	printReadAttribution(st.KVAccel)
	fmt.Printf("kvaccel     : redirected=%d rollbacks=%d\n", st.KVAccel.RedirectedPuts, st.KVAccel.Rollbacks)
	for i, s := range st.PerShard {
		fmt.Printf("shard %-6d: puts=%d redirected=%d rollbacks=%d stalls=%d stall-time=%v\n",
			i, s.KVAccel.NormalPuts+s.KVAccel.RedirectedPuts, s.KVAccel.RedirectedPuts,
			s.KVAccel.Rollbacks, s.Main.TotalStalls(), s.Main.StallTime)
	}
	if p.queues {
		for _, q := range db.QueueStats() {
			if q.Submitted == 0 {
				continue
			}
			fmt.Printf("queue       : %s\n", q)
		}
	}
	if p.series {
		fmt.Println()
		fmt.Print(rec.WriteSeries.TSV())
		if rec.Reads() > 0 {
			fmt.Print(rec.ReadSeries.TSV())
		}
	}
}
