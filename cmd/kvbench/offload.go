package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"kvaccel/internal/harness"
	"kvaccel/internal/lsm"
	"kvaccel/internal/trace"
)

// stallHeavy renders the offload A/B's write regime: small memtables and
// an early compaction trigger keep an L0→L1 merge almost always runnable,
// and value separation is off (separated compactions are ineligible for
// offload). Four writers fill a 4 MiB memtable every few hundred
// milliseconds, so every flush races the compaction stream for the same
// NAND dies: a host-issued merge programs pages at the same media
// priority as the flush, stretches the flush past the fill time, and the
// writers take memtable stalls — the "host compaction pressure" the
// device-side executor relieves by scheduling its merge ops into idle
// die slots instead. The stop trigger is left loose so the
// background-paced device drain is never itself a stall source.
func stallHeavy(p harness.Params) harness.Params {
	p.ValueThreshold = 0
	p.HostCores = 4
	p.Writers = 4
	// Overwrite-heavy: a small working set keeps L1 bounded (merges mostly
	// dedupe), so L0→L1 merges stay ~1 s instead of snowballing with the
	// dataset — the steady-state compaction stream the offload targets.
	p.KeySpace = 4096
	// Fixed offered load, sized between the two arms' open-throttle
	// capacities: with an open throttle the protected arm just converts
	// its headroom into more ingest (and therefore the same stalls), so
	// stall time measures nothing. At a constant demand the host-only arm
	// cannot sustain, stall time is exactly the capacity shortfall.
	p.WriteIntervalMicros = 85
	p.TuneLSM = func(o *lsm.Options) {
		o.MemtableSize = 4 << 20
		o.L0CompactionTrigger = 4
		o.L0SlowdownTrigger = 12
		o.L0StopTrigger = 20
	}
	return p
}

func sumStalls(s lsm.Stats) int64 {
	var n int64
	for _, c := range s.StallEvents {
		n += c
	}
	return n
}

// runOffloadAB is the compaction-offload A/B harness: stall-heavy
// fillrandom twice on identical seeds — host-only merges, then with the
// device-side executor enabled — and writes the paired records plus the
// headline stall-time reduction to path. Exits non-zero if offload-on
// never offloaded anything (a vacuous comparison).
func runOffloadAB(p harness.Params, spec harness.EngineSpec, path string) int {
	kind := harness.WorkloadA
	p = stallHeavy(p)
	// The A/B isolates the Main-LSM write path: stock engine, hard stalls,
	// no redirection hedge. With the hedge active the Dev-LSM absorbs the
	// stall windows itself and its put/flush traffic occupies the ARM core
	// the merge executor needs — a different experiment (the redirection
	// A/B) measures that interaction.
	spec.Kind = harness.KindRocksDB
	spec.Slowdown = false
	if spec.Threads < 1 {
		spec.Threads = 1
	}
	fmt.Printf("kvbench: %s, fillrandom stall-heavy, scale=%d duration=%v keyspace=%d value=%dB writers=%d seed=%d — offload A/B (device merges off vs on)\n",
		spec.Name(), p.Scale, p.Duration, p.KeySpace, p.ValueSize, p.Writers, p.Seed)
	fmt.Printf("%8s %10s %9s %12s %12s %12s %10s %10s\n",
		"offload", "writes", "Kops/s", "write-p99", "stall-time", "stalls(m/l0)", "offloaded", "fallbacks")
	row := func(label string, res *harness.RunResult) {
		m := res.MainStats
		fmt.Printf("%8s %10d %9.2f %12v %12v %7d/%-4d %10d %10d\n",
			label, res.Rec.Writes(), res.WriteKops(),
			res.Rec.WriteLatency.Quantile(0.99),
			m.StallTime.Round(time.Millisecond),
			m.StallEvents[lsm.StallMemtable], m.StallEvents[lsm.StallL0],
			m.OffloadedCompactions, m.OffloadFallbacks)
		if os.Getenv("KVBENCH_OFFLOAD_DEBUG") != "" {
			fmt.Printf("  debug: flushes=%d flushMB=%.1f compactions=%d compReadMB=%.1f compWriteMB=%.1f slowdowns=%d walMB=%.1f\n",
				m.Flushes, float64(m.FlushBytes)/(1<<20), m.Compactions,
				float64(m.CompactionReadBytes)/(1<<20), float64(m.CompactionWriteBytes)/(1<<20),
				m.Slowdowns, float64(m.WALBytesWritten)/(1<<20))
		}
	}

	debug := os.Getenv("KVBENCH_OFFLOAD_DEBUG") != ""

	off := p
	off.OffloadCompaction = false
	if debug {
		off.Trace = trace.New(1 << 20)
	}
	resOff := off.Run(spec, kind)
	row("off", resOff)
	if debug && resOff.TraceSummary != nil {
		fmt.Print(resOff.TraceSummary.Table())
	}

	on := p
	on.OffloadCompaction = true
	if debug {
		on.Trace = trace.New(1 << 20)
	}
	resOn := on.Run(spec, kind)
	row("on", resOn)
	if debug && resOn.TraceSummary != nil {
		fmt.Print(resOn.TraceSummary.Table())
	}

	var reduction float64
	if resOff.MainStats.StallTime > 0 {
		reduction = 1 - float64(resOn.MainStats.StallTime)/float64(resOff.MainStats.StallTime)
	}
	fmt.Printf("stall-time  : %v -> %v (%.1f%% reduction), device merge CPU %v\n",
		resOff.MainStats.StallTime.Round(time.Millisecond),
		resOn.MainStats.StallTime.Round(time.Millisecond),
		reduction*100,
		time.Duration(resOn.MainStats.DeviceMergeCPUMicros)*time.Microsecond)

	out := struct {
		OffloadOff     benchJSON `json:"offload_off"`
		OffloadOn      benchJSON `json:"offload_on"`
		StallReduction float64   `json:"stall_time_reduction"`
		Offloaded      int64     `json:"offloaded_compactions"`
		OffloadedMB    float64   `json:"offloaded_mb"`
		Fallbacks      int64     `json:"offload_fallbacks"`
	}{
		makeBenchJSON(off, spec, kind, resOff),
		makeBenchJSON(on, spec, kind, resOn),
		reduction,
		resOn.MainStats.OffloadedCompactions,
		float64(resOn.MainStats.OffloadedBytes) / (1 << 20),
		resOn.MainStats.OffloadFallbacks,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("json        : offload A/B record -> %s\n", path)
	if resOn.MainStats.OffloadedCompactions == 0 {
		fmt.Fprintln(os.Stderr, "offload-on run never offloaded a compaction")
		return 1
	}
	return 0
}
