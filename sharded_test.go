package kvaccel

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardRouterUniformity checks that FNV-1a spreads a realistic key
// population evenly: no shard more than 25% off the ideal share.
func TestShardRouterUniformity(t *testing.T) {
	const n, keys = 8, 80_000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[shardIndex([]byte(fmt.Sprintf("key%016d", i)), n)]++
	}
	ideal := keys / n
	for s, c := range counts {
		if c < ideal*3/4 || c > ideal*5/4 {
			t.Errorf("shard %d holds %d keys, ideal %d (±25%%)", s, c, ideal)
		}
	}
}

// TestShardRouterStability checks the two properties routing correctness
// rests on: determinism (same key, same shard, always — FNV-1a has no
// per-process seed, so placement survives restarts) and range validity.
func TestShardRouterStability(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		for i := 0; i < 1000; i++ {
			k := []byte(fmt.Sprintf("stable%08d", i))
			first := shardIndex(k, n)
			if first < 0 || first >= n {
				t.Fatalf("shardIndex(%q, %d) = %d out of range", k, n, first)
			}
			if again := shardIndex(k, n); again != first {
				t.Fatalf("shardIndex(%q, %d) unstable: %d then %d", k, n, first, again)
			}
		}
	}
	// Known FNV-1a vector: hash("") = offset basis.
	if got := shardIndex(nil, 1); got != 0 {
		t.Fatalf("shardIndex(nil, 1) = %d", got)
	}
}

func shardedTestDB(t *testing.T, shards int) *ShardedDB {
	t.Helper()
	opt := DefaultShardedOptions()
	opt.Shards = shards
	opt.Rollback = RollbackDisabled
	return OpenSharded(opt)
}

// TestShardedRoundTrip covers the fan-out paths: Put/Get/Delete route to
// the owning shard and the view is one coherent database.
func TestShardedRoundTrip(t *testing.T) {
	db := shardedTestDB(t, 4)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		for i := 0; i < 400; i++ {
			k := []byte(fmt.Sprintf("key%05d", i))
			if err := db.Put(r, k, []byte(fmt.Sprintf("val%d", i))); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		for i := 0; i < 400; i += 7 {
			k := []byte(fmt.Sprintf("key%05d", i))
			v, ok, err := db.Get(r, k)
			if err != nil || !ok || string(v) != fmt.Sprintf("val%d", i) {
				t.Errorf("get %d: ok=%v err=%v", i, ok, err)
			}
		}
		_ = db.Delete(r, []byte("key00111"))
		if _, ok, _ := db.Get(r, []byte("key00111")); ok {
			t.Error("deleted key still visible")
		}
	})
	db.Wait()

	// Every shard should have taken a share of the writes.
	st := db.Stats()
	if got := st.KVAccel.NormalPuts + st.KVAccel.RedirectedPuts; got != 401 {
		t.Fatalf("aggregate puts = %d, want 401", got)
	}
	for i, s := range st.PerShard {
		if s.KVAccel.NormalPuts+s.KVAccel.RedirectedPuts == 0 {
			t.Errorf("shard %d took no writes", i)
		}
	}
}

// TestShardedIteratorOrdering checks the cross-shard merged cursor:
// globally sorted, no duplicates, tombstones suppressed, and correct
// with shards that hold no keys at all.
func TestShardedIteratorOrdering(t *testing.T) {
	db := shardedTestDB(t, 4)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		const n = 300
		for i := 0; i < n; i++ {
			_ = db.Put(r, []byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
		// Delete a few keys; the merge must not resurface them.
		deleted := map[string]bool{}
		for i := 0; i < n; i += 37 {
			k := fmt.Sprintf("key%05d", i)
			_ = db.Delete(r, []byte(k))
			deleted[k] = true
		}

		it := db.NewIterator(r)
		defer it.Close()
		seen := map[string]bool{}
		var prev []byte
		for it.SeekToFirst(); it.Valid(); it.Next() {
			k := string(it.Key())
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				t.Fatalf("merge out of order: %q after %q", k, prev)
			}
			if seen[k] {
				t.Fatalf("merge surfaced %q twice", k)
			}
			if deleted[k] {
				t.Fatalf("merge surfaced deleted key %q", k)
			}
			seen[k] = true
			prev = append(prev[:0], it.Key()...)
		}
		if want := n - len(deleted); len(seen) != want {
			t.Fatalf("merge yielded %d keys, want %d", len(seen), want)
		}

		// Seek lands on the first key >= target across all shards.
		it2 := db.NewIterator(r)
		defer it2.Close()
		it2.Seek([]byte("key00150"))
		if !it2.Valid() || string(it2.Key()) != "key00150" {
			t.Fatalf("Seek(key00150) landed on %q", it2.Key())
		}
	})
	db.Wait()
}

// TestShardedIteratorEmptyShards scans a store whose few keys all hash
// into a subset of shards, leaving others empty.
func TestShardedIteratorEmptyShards(t *testing.T) {
	db := shardedTestDB(t, 8)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		_ = db.Put(r, []byte("only"), []byte("pair"))
		it := db.NewIterator(r)
		defer it.Close()
		it.SeekToFirst()
		if !it.Valid() || string(it.Key()) != "only" || string(it.Value()) != "pair" {
			t.Fatalf("scan over mostly-empty shards: valid=%v key=%q", it.Valid(), it.Key())
		}
		it.Next()
		if it.Valid() {
			t.Fatal("scan did not terminate")
		}
	})
	db.Wait()
}

// TestShardedWriteBatchSplitsByOwner commits one batch spanning all
// shards and checks every op landed.
func TestShardedWriteBatchSplitsByOwner(t *testing.T) {
	db := shardedTestDB(t, 4)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		_ = db.Put(r, []byte("gone"), []byte("x"))
		var b Batch
		for i := 0; i < 40; i++ {
			b.Put([]byte(fmt.Sprintf("batch%03d", i)), []byte("v"))
		}
		b.Delete([]byte("gone"))
		if err := db.WriteBatch(r, &b); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, ok, _ := db.Get(r, []byte(fmt.Sprintf("batch%03d", i))); !ok {
				t.Fatalf("batch key %d missing", i)
			}
		}
		if _, ok, _ := db.Get(r, []byte("gone")); ok {
			t.Fatal("batched delete not applied")
		}
	})
	db.Wait()
}

// TestShardedRedirectionAndRecovery drives the stall path on every shard
// then crashes and recovers the whole front-end.
func TestShardedRedirectionAndRecovery(t *testing.T) {
	db := shardedTestDB(t, 2)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		for i := 0; i < db.NumShards(); i++ {
			db.Shard(i).Detector().SetOverride(true)
		}
		for i := 0; i < 100; i++ {
			_ = db.Put(r, []byte(fmt.Sprintf("key%05d", i)), []byte("v"))
		}
		for i := 0; i < db.NumShards(); i++ {
			db.Shard(i).Detector().SetOverride(false)
		}
		st := db.Stats()
		if st.KVAccel.RedirectedPuts != 100 {
			t.Fatalf("redirected = %d, want 100", st.KVAccel.RedirectedPuts)
		}
		db.SimulateCrash()
		db.Recover(r)
		for i := 0; i < 100; i += 11 {
			if _, ok, _ := db.Get(r, []byte(fmt.Sprintf("key%05d", i))); !ok {
				t.Errorf("key %d lost across crash", i)
			}
		}
	})
	db.Wait()
	st := db.Stats()
	if st.KVAccel.Recoveries != int64(db.NumShards()) {
		t.Fatalf("recoveries = %d, want one per shard", st.KVAccel.Recoveries)
	}
}

// TestShardedStatsAggregation checks Stats() returns the exact sum of
// the per-shard breakdowns.
func TestShardedStatsAggregation(t *testing.T) {
	db := shardedTestDB(t, 3)
	db.Run("main", func(r *Runner) {
		defer db.Close()
		for i := 0; i < 150; i++ {
			_ = db.Put(r, []byte(fmt.Sprintf("key%05d", i)), []byte("v"))
		}
		for i := 0; i < 150; i += 3 {
			_, _, _ = db.Get(r, []byte(fmt.Sprintf("key%05d", i)))
		}
	})
	db.Wait()
	st := db.Stats()
	if len(st.PerShard) != 3 {
		t.Fatalf("PerShard has %d entries, want 3", len(st.PerShard))
	}
	var puts, gets int64
	for _, s := range st.PerShard {
		puts += s.KVAccel.NormalPuts + s.KVAccel.RedirectedPuts
		gets += s.KVAccel.MainGets + s.KVAccel.DevGets
	}
	if agg := st.KVAccel.NormalPuts + st.KVAccel.RedirectedPuts; agg != puts {
		t.Errorf("aggregate puts %d != per-shard sum %d", agg, puts)
	}
	if agg := st.KVAccel.MainGets + st.KVAccel.DevGets; agg != gets {
		t.Errorf("aggregate gets %d != per-shard sum %d", agg, gets)
	}
	if puts != 150 || gets != 50 {
		t.Errorf("per-shard sums: puts=%d gets=%d, want 150/50", puts, gets)
	}
}

// TestScaleClampsToOne pins the Options.Scale contract: values below 1
// clamp to 1 (full fidelity) instead of silently reverting to the
// scale-10 default, for both Open and OpenSharded.
func TestScaleClampsToOne(t *testing.T) {
	for _, scale := range []int{0, -5} {
		if got := (Options{Scale: scale}).normalize().Scale; got != 1 {
			t.Errorf("normalize(Scale=%d).Scale = %d, want 1", scale, got)
		}
	}
	if got := (Options{Scale: 7}).normalize().Scale; got != 7 {
		t.Errorf("normalize clobbered an explicit scale: got %d", got)
	}

	opt := DefaultShardedOptions()
	opt.Scale = 0
	opt.Shards = 0
	db := OpenSharded(opt)
	if db.NumShards() != 1 {
		t.Fatalf("Shards=0 opened %d shards, want 1", db.NumShards())
	}
	db.Run("main", func(r *Runner) {
		defer db.Close()
		if err := db.Put(r, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	})
	db.Wait()
}
