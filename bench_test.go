// Benchmarks: one testing.B bench per table and figure of the paper's
// evaluation (§VI). Each bench runs a shortened version of the
// corresponding experiment on the simulated testbed and reports the
// figure's headline numbers as custom metrics (Kops/s, µs, ratios).
// go test -bench=. -benchmem regenerates every row; cmd/experiments runs
// the full-length versions.
package kvaccel_test

import (
	"io"
	"testing"
	"time"

	"kvaccel/internal/core"
	"kvaccel/internal/harness"
)

// benchParams is a shortened configuration so the full bench suite
// completes in minutes.
func benchParams() harness.Params {
	p := harness.DefaultParams()
	p.Duration = 25 * time.Second
	p.KeySpace = 200_000
	return p
}

// BenchmarkFig2SlowdownAblation regenerates Figure 2: per-second
// throughput of RocksDB and ADOC with the slowdown mechanism on and off.
func BenchmarkFig2SlowdownAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig2_3(io.Discard)
		b.ReportMetric(res[0].AvgKops, "rocksdb-noSD-kops")
		b.ReportMetric(res[2].AvgKops, "rocksdb-SD-kops")
		b.ReportMetric(float64(res[2].Slowdowns), "rocksdb-slowdowns")
		b.ReportMetric(float64(res[3].Slowdowns), "adoc-slowdowns")
	}
}

// BenchmarkFig3TailLatency regenerates Figure 3: average throughput and
// tail latency across the four slowdown-ablation configurations.
func BenchmarkFig3TailLatency(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig2_3(io.Discard)
		b.ReportMetric(float64(res[0].P99.Microseconds()), "rocksdb-noSD-p99-us")
		b.ReportMetric(float64(res[2].P99.Microseconds()), "rocksdb-SD-p99-us")
		b.ReportMetric(float64(res[1].P999.Microseconds()), "adoc-noSD-p999-us")
		b.ReportMetric(float64(res[3].P999.Microseconds()), "adoc-SD-p999-us")
	}
}

// BenchmarkFig4PCIeTimeSeries regenerates Figure 4: PCIe traffic during
// write stalls for RocksDB(1)/(4) without slowdown.
func BenchmarkFig4PCIeTimeSeries(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig4_5(io.Discard)
		b.ReportMetric(float64(res[0].StallSeconds), "rocksdb1-stall-secs")
		b.ReportMetric(res[0].Res.PCIeSeries.Mean(), "rocksdb1-pcie-MBps")
	}
}

// BenchmarkFig5PCIeCDF regenerates Figure 5: the CDF of PCIe bandwidth
// utilization during write-stall seconds.
func BenchmarkFig5PCIeCDF(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig4_5(io.Discard)
		b.ReportMetric(100*res[0].FracZeroTraffic, "rocksdb1-zero-traffic-pct")
		b.ReportMetric(100*res[0].FracHighTraffic, "rocksdb1-high-traffic-pct")
		if len(res) > 1 {
			b.ReportMetric(100*res[1].FracZeroTraffic, "rocksdb4-zero-traffic-pct")
		}
	}
}

// BenchmarkFig11PerSecondThroughput regenerates Figure 11: RocksDB(1),
// ADOC(1), KVACCEL(1) under workload A.
func BenchmarkFig11PerSecondThroughput(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig11(io.Discard)
		b.ReportMetric(res[0].WriteKops(), "rocksdb1-kops")
		b.ReportMetric(res[1].WriteKops(), "adoc1-kops")
		b.ReportMetric(res[2].WriteKops(), "kvaccel1-kops")
		if base := res[0].WriteKops(); base > 0 {
			b.ReportMetric(res[2].WriteKops()/base, "kvaccel-vs-rocksdb")
		}
	}
}

// BenchmarkFig12ThroughputP99Efficiency regenerates Figure 12 for the
// 1-thread column (the full 3x3 sweep runs via cmd/experiments).
func BenchmarkFig12ThroughputP99Efficiency(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		specs := []harness.EngineSpec{
			{Kind: harness.KindRocksDB, Threads: 1, Slowdown: true},
			{Kind: harness.KindADOC, Threads: 1, Slowdown: true},
			{Kind: harness.KindKVAccel, Threads: 1, Rollback: core.RollbackDisabled},
		}
		names := []string{"rocksdb1", "adoc1", "kvaccel1"}
		for j, spec := range specs {
			res := p.Run(spec, harness.WorkloadA)
			b.ReportMetric(res.WriteKops(), names[j]+"-kops")
			b.ReportMetric(res.Efficiency(), names[j]+"-efficiency")
		}
	}
}

// BenchmarkFig13RollbackSchemes regenerates Figure 13 for workload C
// (8:2 mix), comparing lazy and eager rollback at 4 threads.
func BenchmarkFig13RollbackSchemes(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		lazy := p.Run(harness.EngineSpec{Kind: harness.KindKVAccel, Threads: 4, Rollback: core.RollbackLazy}, harness.WorkloadC)
		eager := p.Run(harness.EngineSpec{Kind: harness.KindKVAccel, Threads: 4, Rollback: core.RollbackEager}, harness.WorkloadC)
		adoc := p.Run(harness.EngineSpec{Kind: harness.KindADOC, Threads: 4, Slowdown: true}, harness.WorkloadC)
		b.ReportMetric(lazy.WriteKops(), "kvaccel-L-write-kops")
		b.ReportMetric(eager.WriteKops(), "kvaccel-E-write-kops")
		b.ReportMetric(eager.ReadKops(), "kvaccel-E-read-kops")
		b.ReportMetric(adoc.WriteKops(), "adoc-write-kops")
	}
}

// BenchmarkTableVRangeQuery regenerates Table V: seekrandom throughput
// across the three engines.
func BenchmarkTableVRangeQuery(b *testing.B) {
	p := benchParams()
	p.KeySpace = 30_000 // shorter preload for bench time
	p.Duration = 5 * time.Second
	for i := 0; i < b.N; i++ {
		rows := p.TableV(io.Discard)
		for _, row := range rows {
			b.ReportMetric(row.Kops, row.Name+"-kops")
		}
	}
}

// BenchmarkTableVIOverheads regenerates Table VI: real wall-clock costs
// of the Detector and metadata-manager operations.
func BenchmarkTableVIOverheads(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.TableVI(io.Discard)
		b.ReportMetric(float64(res.Detector.Nanoseconds())/1000, "detector-us")
		b.ReportMetric(float64(res.KeyInsert.Nanoseconds())/1000, "key-insert-us")
		b.ReportMetric(float64(res.KeyCheck.Nanoseconds())/1000, "key-check-us")
		b.ReportMetric(float64(res.KeyDelete.Nanoseconds())/1000, "key-delete-us")
	}
}

// BenchmarkRecovery regenerates §VI-D: rolling 10,000 pairs back from the
// Dev-LSM after metadata loss.
func BenchmarkRecovery(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Recovery(io.Discard)
		b.ReportMetric(res.Elapsed.Seconds(), "recovery-sec-virtual")
	}
}

// BenchmarkFig14ZeroTrafficIntervals regenerates Figure 14: the
// reduction in zero-PCIe-traffic seconds with KVACCEL.
func BenchmarkFig14ZeroTrafficIntervals(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := p.Fig14(io.Discard)
		b.ReportMetric(float64(res.RocksDBZeroSecs), "rocksdb-zero-secs")
		b.ReportMetric(float64(res.KVAccelZeroSecs), "kvaccel-zero-secs")
		b.ReportMetric(res.ReductionPct, "reduction-pct")
	}
}
